//! Optional event tracing: a bounded in-memory log of op completions
//! for debugging cost models and inspecting schedules, plus an always-on
//! **replay digest** for determinism enforcement.
//!
//! Tracing is off by default (zero overhead beyond a branch); when
//! enabled the scheduler records `(time, op)` pairs which can be dumped
//! as a text timeline.
//!
//! The digest is independent of the `enabled` flag: every completion is
//! folded into an order-sensitive FNV-1a hash of the `(time, op)` stream
//! regardless of whether events are stored.  Two runs of the same
//! workload must produce the same digest; any divergence — a reordered
//! completion, a shifted timestamp — changes it.  This is the runtime
//! counterpart of the `simlint` static pass: the lint forbids sources of
//! nondeterminism, the digest catches whatever slips through.

use crate::engine::OpId;
use crate::time::SimTime;

/// Order-sensitive FNV-1a (64-bit) accumulator over `(time, op)` pairs.
///
/// FNV-1a folds each byte into the running state before multiplying by
/// the prime, so the digest depends on the exact byte *sequence*:
/// swapping two completions, or moving one in time, yields a different
/// value.  Not cryptographic — it guards against accidents, not
/// adversaries — but 64 bits is plenty to make silent schedule drift
/// visible in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayDigest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for ReplayDigest {
    fn default() -> Self {
        ReplayDigest(FNV_OFFSET)
    }
}

impl ReplayDigest {
    /// Fresh digest (FNV offset basis).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one completion event into the digest.
    pub fn update(&mut self, at: SimTime, op: OpId) {
        for b in at.0.to_le_bytes().into_iter().chain(op.0.to_le_bytes()) {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one fired fault event into the digest.  A tag byte separates
    /// the fault stream from op completions, so a fault `(t, id)` can
    /// never collide with a completion `(t, OpId(id))`.
    pub fn update_fault(&mut self, at: SimTime, id: u64) {
        const FAULT_TAG: u8 = 0xFA;
        self.update_tagged(FAULT_TAG, at, id);
    }

    /// Fold a tagged `(time, value)` event.  Tag bytes partition distinct
    /// event streams (faults, span opens/closes/marks) so records from
    /// different streams can never collide byte-for-byte.
    pub(crate) fn update_tagged(&mut self, tag: u8, at: SimTime, v: u64) {
        self.0 = (self.0 ^ tag as u64).wrapping_mul(FNV_PRIME);
        for b in at.0.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a raw byte string (length-prefixed, so `"ab" + "c"` and
    /// `"a" + "bc"` hash differently).
    pub(crate) fn update_bytes(&mut self, bytes: &[u8]) {
        for b in (bytes.len() as u64)
            .to_le_bytes()
            .into_iter()
            .chain(bytes.iter().copied())
        {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A bounded completion log.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<(SimTime, OpId)>,
    dropped: u64,
    digest: ReplayDigest,
}

impl Trace {
    /// Disabled trace (the default).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// Recording trace keeping at most `cap` events (older events are
    /// kept; overflow is counted, not stored).
    pub fn bounded(cap: usize) -> Trace {
        Trace {
            enabled: true,
            cap,
            ..Trace::default()
        }
    }

    /// Whether events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, at: SimTime, op: OpId) {
        // The replay digest is always on: it covers every completion
        // since this Trace was installed, stored or not.
        self.digest.update(at, op);
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push((at, op));
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn record_fault(&mut self, at: SimTime, id: u64) {
        // Faults enter the digest (the failure schedule is part of the
        // replayed history) but not the bounded completion log.
        self.digest.update_fault(at, id);
    }

    pub(crate) fn record_schedule(&mut self, events: &[crate::faults::FaultEvent]) {
        // Schedule header fold: installing a fault plan pins its full
        // canonical encoding (times, ids, actions with every parameter)
        // into the digest *before* any event fires.  A saved schedule
        // therefore pins its run — replaying a schedule that differs in
        // any field, even one that never fires because the run drains
        // first, yields a different digest.
        const SCHEDULE_TAG: u8 = 0x5C;
        self.digest
            .update_tagged(SCHEDULE_TAG, SimTime(0), events.len() as u64);
        let mut bytes = Vec::with_capacity(events.len() * 41);
        for ev in events {
            ev.encode(&mut bytes);
        }
        self.digest.update_bytes(&bytes);
    }

    /// Order-sensitive FNV-1a digest of every `(time, op)` completion seen
    /// by this trace (independent of the storage bound and `enabled`).
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// Recorded `(completion time, op)` pairs, in completion order.
    pub fn events(&self) -> &[(SimTime, OpId)] {
        &self.events
    }

    /// Completions that did not fit in the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render a text timeline (one line per completion).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, op) in &self.events {
            let _ = writeln!(out, "{:>14}  op {}", t.to_string(), op.0);
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "... and {} more completions (bound reached)",
                self.dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::from_millis(1), OpId(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let (a, b) = (
            (SimTime::from_millis(1), OpId(1)),
            (SimTime::from_millis(2), OpId(2)),
        );
        let mut fwd = ReplayDigest::new();
        fwd.update(a.0, a.1);
        fwd.update(b.0, b.1);
        let mut rev = ReplayDigest::new();
        rev.update(b.0, b.1);
        rev.update(a.0, a.1);
        assert_ne!(
            fwd.value(),
            rev.value(),
            "swapped completions must change the digest"
        );
        // Shifting a timestamp changes it too.
        let mut shifted = ReplayDigest::new();
        shifted.update(SimTime::from_millis(3), a.1);
        shifted.update(b.0, b.1);
        assert_ne!(fwd.value(), shifted.value());
    }

    #[test]
    fn digest_is_stable_across_runs() {
        let run = || {
            let mut d = ReplayDigest::new();
            for i in 0..1000u64 {
                d.update(SimTime::from_millis(i * 7), OpId(i));
            }
            d.value()
        };
        assert_eq!(
            run(),
            run(),
            "identical event streams must hash identically"
        );
        assert_ne!(run(), ReplayDigest::new().value());
    }

    #[test]
    fn digest_active_even_when_trace_disabled() {
        let mut off = Trace::disabled();
        let mut on = Trace::bounded(16);
        for i in 0..4u64 {
            off.record(SimTime::from_millis(i), OpId(i));
            on.record(SimTime::from_millis(i), OpId(i));
        }
        assert!(off.events().is_empty());
        assert_eq!(off.digest(), on.digest());
        // The storage bound does not affect the digest either.
        let mut tiny = Trace::bounded(1);
        for i in 0..4u64 {
            tiny.record(SimTime::from_millis(i), OpId(i));
        }
        assert_eq!(tiny.digest(), on.digest());
    }

    #[test]
    fn bounded_keeps_prefix_and_counts_overflow() {
        let mut t = Trace::bounded(2);
        for i in 0..5u64 {
            t.record(SimTime::from_millis(i), OpId(i));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let text = t.render();
        assert!(text.contains("op 0"));
        assert!(text.contains("3 more completions"));
    }
}
