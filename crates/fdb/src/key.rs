//! Weather-field keys: the scientifically meaningful request language
//! FDB exposes (MARS-style identifiers).

use std::fmt;

/// Identifies one weather field (a simplified MARS key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldKey {
    /// Forecast base date, `YYYYMMDD`.
    pub date: u32,
    /// Forecast base time, hours.
    pub time: u8,
    /// Ensemble member number.
    pub member: u16,
    /// Parameter id (e.g. 130 = temperature).
    pub param: u16,
    /// Model level.
    pub level: u16,
    /// Forecast step, hours.
    pub step: u16,
}

impl FieldKey {
    /// The key of the `i`-th field archived by process `proc` in a
    /// benchmark sequence: every process writes a distinct ensemble
    /// member, iterating over params/levels/steps — the access pattern
    /// fdb-hammer generates.
    pub fn sequence(proc: usize, i: usize) -> FieldKey {
        FieldKey {
            date: 20260706,
            time: 0,
            member: proc as u16,
            param: 129 + (i % 8) as u16,
            level: 1 + ((i / 8) % 137) as u16,
            step: ((i / (8 * 137)) * 3) as u16,
        }
    }

    /// The index grouping this key belongs to (FDB indexes by
    /// date/time/member — the "TOC" granularity).
    pub fn index_group(&self) -> String {
        format!("{}:{:02}:{}", self.date, self.time, self.member)
    }
}

impl fmt::Display for FieldKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={},t={:02},m={},p={},l={},s={}",
            self.date, self.time, self.member, self.param, self.level, self.step
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_keys_are_unique_per_proc() {
        let mut seen = std::collections::HashSet::new();
        for proc in 0..4 {
            for i in 0..500 {
                assert!(
                    seen.insert(FieldKey::sequence(proc, i)),
                    "dup at {proc}/{i}"
                );
            }
        }
    }

    #[test]
    fn index_group_shared_within_member() {
        let a = FieldKey::sequence(3, 0);
        let b = FieldKey::sequence(3, 17);
        assert_eq!(a.index_group(), b.index_group());
        assert_ne!(a.index_group(), FieldKey::sequence(4, 0).index_group());
    }

    #[test]
    fn display_is_stable() {
        let k = FieldKey::sequence(1, 1);
        assert_eq!(k.to_string(), format!("{k}"));
        assert!(k.to_string().contains("m=1"));
    }
}

/// A partial key: `None` fields match anything (the MARS-request style
/// FDB queries use, e.g. "all levels of param 130 for member 3").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyQuery {
    /// Match a specific date.
    pub date: Option<u32>,
    /// Match a specific base time.
    pub time: Option<u8>,
    /// Match a specific ensemble member.
    pub member: Option<u16>,
    /// Match a specific parameter.
    pub param: Option<u16>,
    /// Match a specific level.
    pub level: Option<u16>,
    /// Match a specific step.
    pub step: Option<u16>,
}

impl KeyQuery {
    /// Match everything.
    pub fn all() -> KeyQuery {
        KeyQuery::default()
    }

    /// Restrict to one ensemble member.
    pub fn member(member: u16) -> KeyQuery {
        KeyQuery {
            member: Some(member),
            ..Default::default()
        }
    }

    /// Whether `key` satisfies the query.
    pub fn matches(&self, key: &FieldKey) -> bool {
        self.date.is_none_or(|v| v == key.date)
            && self.time.is_none_or(|v| v == key.time)
            && self.member.is_none_or(|v| v == key.member)
            && self.param.is_none_or(|v| v == key.param)
            && self.level.is_none_or(|v| v == key.level)
            && self.step.is_none_or(|v| v == key.step)
    }
}

#[cfg(test)]
mod query_tests {
    use super::*;

    #[test]
    fn all_matches_everything() {
        let q = KeyQuery::all();
        assert!(q.matches(&FieldKey::sequence(0, 0)));
        assert!(q.matches(&FieldKey::sequence(7, 123)));
    }

    #[test]
    fn member_query_filters() {
        let q = KeyQuery::member(3);
        assert!(q.matches(&FieldKey::sequence(3, 5)));
        assert!(!q.matches(&FieldKey::sequence(4, 5)));
    }

    #[test]
    fn compound_query() {
        let k = FieldKey::sequence(2, 9);
        let q = KeyQuery {
            member: Some(2),
            param: Some(k.param),
            ..Default::default()
        };
        assert!(q.matches(&k));
        let q2 = KeyQuery {
            member: Some(2),
            param: Some(k.param + 1),
            ..Default::default()
        };
        assert!(!q2.matches(&k));
    }
}
