//! Seeded chaos-schedule generation: random [`FaultPlan`]s over the full
//! [`FaultAction`] space.
//!
//! FoundationDB-style simulation testing needs a *generator*, not just a
//! replayer: instead of hand-writing one curated failure schedule, a
//! swarm samples thousands of random schedules and checks invariants
//! after each.  This module is the sampling half.  A [`ChaosSpace`]
//! enumerates what *can* fail in a deployed topology (crashable target
//! groups, disk and NIC resources, delayable components); a
//! [`ChaosConfig`] bounds *how* it may fail (time window, fault budget,
//! severity range); [`generate`] maps `(space, config, seed)` to a
//! concrete [`FaultPlan`] using only a [`SplitMix64`] stream — the same
//! triple always yields the same plan, so a failing seed is already a
//! repro before its schedule is even saved to disk.
//!
//! Schedules are generated as *incidents*, not independent events: a
//! degraded disk gets a matching restore (`scale: 1.0`), a delayed
//! component gets a matching clear (`extra_ns: 0`), and a crashed group
//! may get a restart.  Unpaired degradations would make every long run
//! end in a trivially-slow steady state and mask real bugs.

use crate::faults::{FaultAction, FaultPlan};
use crate::rng::SplitMix64;
use crate::step::ResourceId;
use crate::time::SimTime;

/// What a chaos schedule is allowed to break: the fault surface of one
/// deployed topology.
///
/// Empty dimensions are simply never sampled, so a space with only
/// `disks`/`nics` populated yields pure engine-level schedules (capacity
/// scaling, no world involvement) that are safe against any scenario.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpace {
    /// Groups of packed target ids that crash (and restart) together —
    /// one group per server, so a sampled crash takes out a whole
    /// fault domain exactly like the hand-written faulted scenarios.
    pub crash_groups: Vec<Vec<u64>>,
    /// Disk resources eligible for [`FaultAction::SlowDisk`].
    pub disks: Vec<ResourceId>,
    /// NIC resources eligible for [`FaultAction::NicBrownout`].
    pub nics: Vec<ResourceId>,
    /// World-interpreted payloads eligible for
    /// [`FaultAction::DelayedCompletion`] (e.g. server ranks).
    pub delay_payloads: Vec<u64>,
    /// Server ranks eligible for [`FaultAction::AddServer`] (spare
    /// hardware the world can bring online).  Each rank is added at most
    /// once per schedule; membership changes land in the first half of
    /// the window so the migration they trigger runs inside it.
    pub add_servers: Vec<u64>,
    /// Server ranks eligible for [`FaultAction::DrainServer`].  Each
    /// rank drains at most once per schedule.
    pub drain_servers: Vec<u64>,
    /// Crash groups fired only in the *second* half of the window — the
    /// crash-during-migration dimension.  They share the
    /// [`ChaosConfig::max_crash_groups`] budget with `crash_groups`, so
    /// a schedule never exceeds the redundancy the object classes
    /// tolerate.
    pub migration_crash_groups: Vec<Vec<u64>>,
    /// Widest redundancy group eligible for [`FaultAction::BitRot`]
    /// (replica count or `k + p`); sampled shards are `< rot_shards`.
    /// Zero disables the bit-rot dimension.  Rot incidents share the
    /// [`ChaosConfig::max_crash_groups`] budget with crashes: one rotten
    /// copy *or* one downed fault domain is what `RP_2`/`EC_2P1`
    /// tolerate — both at once could hit the same unit and turn a
    /// tolerable fault into by-design data loss.
    pub rot_shards: u64,
}

impl ChaosSpace {
    /// True when no dimension can be sampled.
    pub fn is_empty(&self) -> bool {
        self.crash_groups.is_empty()
            && self.disks.is_empty()
            && self.nics.is_empty()
            && self.delay_payloads.is_empty()
            && self.add_servers.is_empty()
            && self.drain_servers.is_empty()
            && self.migration_crash_groups.is_empty()
            && self.rot_shards == 0
    }
}

/// Bounds on a sampled schedule: when faults may fire and how hard they
/// may hit.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Earliest time an incident may start (typically just after the
    /// workload's setup barrier, so faults land inside the I/O phase).
    pub window_start: SimTime,
    /// Width of the incident window in nanoseconds; all incident starts
    /// and their paired recoveries land in
    /// `[window_start, window_start + window_ns]`.
    // simlint::dim(ns)
    pub window_ns: u64,
    /// Maximum number of incidents (a degrade/restore or crash/restart
    /// pair counts as one incident, two events).
    pub max_faults: usize,
    /// Maximum distinct crash groups taken down in one schedule.  The
    /// default is 1: `RP_2`/`EC_2P1` tolerate a single fault-domain
    /// failure, so wider blast radii would report data loss that is the
    /// object class working as specified, not a bug.
    pub max_crash_groups: usize,
    /// Probability that a crashed group is restarted within the window
    /// (otherwise it stays down through rebuild and verification).
    pub restart_probability: f64,
    /// Severity floor for capacity scaling (must be `> 0`; the engine
    /// rejects zero-rate flows).
    pub min_scale: f64,
    /// Severity ceiling for capacity scaling (`< 1.0` or the "fault"
    /// is a no-op).
    pub max_scale: f64,
    /// Ceiling for [`FaultAction::DelayedCompletion`] added latency.
    // simlint::dim(ns)
    pub max_extra_ns: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            window_start: SimTime(0),
            window_ns: 10_000_000, // 10 ms: inside every scenario's I/O phase
            max_faults: 4,
            max_crash_groups: 1,
            restart_probability: 0.5,
            min_scale: 0.1,
            max_scale: 0.9,
            max_extra_ns: 500_000,
        }
    }
}

/// The incident kinds the sampler chooses between (resolved against the
/// space's non-empty dimensions).
#[derive(Clone, Copy)]
enum IncidentKind {
    Crash,
    SlowDisk,
    NicBrownout,
    Delay,
    AddServer,
    DrainServer,
    MigrationCrash,
    BitRot,
}

/// Sample a deterministic fault schedule: same `(space, cfg, seed)` →
/// same plan, event for event.
///
/// The returned plan's event ids are insertion-sequential, and incidents
/// are emitted start-before-recovery, so the plan is valid input for
/// [`FaultPlan::to_json`] / the shrinker without post-processing.  An
/// empty space or a zero fault budget yields an empty plan.
pub fn generate(space: &ChaosSpace, cfg: &ChaosConfig, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if space.is_empty() || cfg.max_faults == 0 || cfg.window_ns == 0 {
        return plan;
    }
    let mut rng = SplitMix64::new(seed);
    let n_incidents = 1 + rng.next_below(cfg.max_faults as u64) as usize;
    let mut crashes_used = 0usize;
    // Groups not yet crashed this schedule: crashing the same group twice
    // without a restart in between would be an invalid double-crash.
    let mut crashable: Vec<usize> = (0..space.crash_groups.len()).collect();
    let mut mig_crashable: Vec<usize> = (0..space.migration_crash_groups.len()).collect();
    // Each server rank joins or drains at most once per schedule.
    let mut addable: Vec<u64> = space.add_servers.clone();
    let mut drainable: Vec<u64> = space.drain_servers.clone();

    for _ in 0..n_incidents {
        let mut kinds: Vec<IncidentKind> = Vec::with_capacity(8);
        if crashes_used < cfg.max_crash_groups && !crashable.is_empty() {
            kinds.push(IncidentKind::Crash);
        }
        if !space.disks.is_empty() {
            kinds.push(IncidentKind::SlowDisk);
        }
        if !space.nics.is_empty() {
            kinds.push(IncidentKind::NicBrownout);
        }
        if !space.delay_payloads.is_empty() {
            kinds.push(IncidentKind::Delay);
        }
        // The rebalance dimensions append after the original four, so a
        // space that leaves them empty draws the exact event stream it
        // always did — archived schedule digests stay valid.
        if !addable.is_empty() {
            kinds.push(IncidentKind::AddServer);
        }
        if !drainable.is_empty() {
            kinds.push(IncidentKind::DrainServer);
        }
        if crashes_used < cfg.max_crash_groups && !mig_crashable.is_empty() {
            kinds.push(IncidentKind::MigrationCrash);
        }
        // The rot dimension appends last for the same archived-digest
        // reason: spaces with rot_shards == 0 draw the stream they
        // always did.
        if crashes_used < cfg.max_crash_groups && space.rot_shards > 0 {
            kinds.push(IncidentKind::BitRot);
        }
        let Some(&kind) = kinds.get(rng.next_below(kinds.len() as u64) as usize) else {
            break; // crash budget spent and nothing else to sample
        };

        // Incident start anywhere in the window but its first ns, so a
        // recovery strictly after it still fits inside the window.
        let start_off = rng.next_below(cfg.window_ns);
        let start = SimTime(cfg.window_start.0 + start_off);
        let recover_at = |rng: &mut SplitMix64| {
            let remaining = cfg.window_ns - start_off;
            SimTime(start.0 + 1 + rng.next_below(remaining.max(1)))
        };

        match kind {
            IncidentKind::Crash => {
                let gi = rng.next_below(crashable.len() as u64) as usize;
                let group_idx = crashable.swap_remove(gi);
                crashes_used += 1;
                for &packed in &space.crash_groups[group_idx] {
                    plan.at(start, FaultAction::TargetCrash(packed));
                }
                if rng.next_f64() < cfg.restart_probability {
                    let back = recover_at(&mut rng);
                    for &packed in &space.crash_groups[group_idx] {
                        plan.at(back, FaultAction::TargetRestart(packed));
                    }
                }
            }
            IncidentKind::SlowDisk | IncidentKind::NicBrownout => {
                let pool = if matches!(kind, IncidentKind::SlowDisk) {
                    &space.disks
                } else {
                    &space.nics
                };
                let resource = pool[rng.next_below(pool.len() as u64) as usize];
                let scale = cfg.min_scale + (cfg.max_scale - cfg.min_scale) * rng.next_f64();
                let restore = recover_at(&mut rng);
                let (hit, heal) = if matches!(kind, IncidentKind::SlowDisk) {
                    (
                        FaultAction::SlowDisk { resource, scale },
                        FaultAction::SlowDisk {
                            resource,
                            scale: 1.0,
                        },
                    )
                } else {
                    (
                        FaultAction::NicBrownout { resource, scale },
                        FaultAction::NicBrownout {
                            resource,
                            scale: 1.0,
                        },
                    )
                };
                plan.at(start, hit);
                plan.at(restore, heal);
            }
            IncidentKind::Delay => {
                let payload = space.delay_payloads
                    [rng.next_below(space.delay_payloads.len() as u64) as usize];
                let extra_ns = 1 + rng.next_below(cfg.max_extra_ns.max(1));
                let clear = recover_at(&mut rng);
                plan.at(start, FaultAction::DelayedCompletion { payload, extra_ns });
                plan.at(
                    clear,
                    FaultAction::DelayedCompletion {
                        payload,
                        extra_ns: 0,
                    },
                );
            }
            IncidentKind::AddServer | IncidentKind::DrainServer => {
                // membership changes fire in the first half of the
                // window so the migration they trigger runs (and can be
                // crashed into) before verification
                let early = SimTime(cfg.window_start.0 + start_off % (cfg.window_ns / 2).max(1));
                match kind {
                    IncidentKind::AddServer => {
                        let i = rng.next_below(addable.len() as u64) as usize;
                        let server = addable.swap_remove(i);
                        plan.at(early, FaultAction::AddServer { server });
                    }
                    _ => {
                        let i = rng.next_below(drainable.len() as u64) as usize;
                        let server = drainable.swap_remove(i);
                        plan.at(early, FaultAction::DrainServer { server });
                    }
                }
            }
            IncidentKind::MigrationCrash => {
                // crash-during-migration: fire in the second half of the
                // window, after membership changes have started moving
                // data
                let half = cfg.window_ns / 2;
                let late_off = half + start_off % (cfg.window_ns - half).max(1);
                let late = SimTime(cfg.window_start.0 + late_off);
                let gi = rng.next_below(mig_crashable.len() as u64) as usize;
                let group_idx = mig_crashable.swap_remove(gi);
                crashes_used += 1;
                for &packed in &space.migration_crash_groups[group_idx] {
                    plan.at(late, FaultAction::TargetCrash(packed));
                }
                if rng.next_f64() < cfg.restart_probability {
                    let remaining = cfg.window_ns - late_off;
                    let back = SimTime(late.0 + 1 + rng.next_below(remaining.max(1)));
                    for &packed in &space.migration_crash_groups[group_idx] {
                        plan.at(back, FaultAction::TargetRestart(packed));
                    }
                }
            }
            IncidentKind::BitRot => {
                // Silent corruption has no paired recovery: only a
                // verified read or a scrub pass heals it.
                crashes_used += 1;
                let locus = rng.next_u64();
                let shard = rng.next_below(space.rot_shards);
                plan.at(start, FaultAction::BitRot { locus, shard });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ChaosSpace {
        ChaosSpace {
            crash_groups: vec![vec![1 << 16, (1 << 16) | 1], vec![2 << 16, (2 << 16) | 1]],
            disks: vec![ResourceId(10), ResourceId(11)],
            nics: vec![ResourceId(20)],
            delay_payloads: vec![1, 2, 3],
            ..ChaosSpace::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        let s = space();
        for seed in 0..32 {
            assert_eq!(generate(&s, &cfg, seed), generate(&s, &cfg, seed));
        }
        assert_ne!(
            generate(&s, &cfg, 1),
            generate(&s, &cfg, 2),
            "distinct seeds should explore distinct schedules"
        );
    }

    #[test]
    fn events_respect_window_and_budget() {
        let cfg = ChaosConfig {
            window_start: SimTime(5_000_000),
            window_ns: 2_000_000,
            max_faults: 6,
            ..ChaosConfig::default()
        };
        let s = space();
        for seed in 0..64 {
            let events = generate(&s, &cfg, seed).into_events();
            assert!(!events.is_empty());
            // Each incident is ≤ 1 crash-group (2 targets) or an event
            // pair, so 6 incidents cap well below 4 × budget events.
            assert!(events.len() <= 4 * cfg.max_faults);
            for ev in &events {
                assert!(ev.at.0 >= cfg.window_start.0, "seed {seed}: before window");
                assert!(
                    ev.at.0 <= cfg.window_start.0 + cfg.window_ns,
                    "seed {seed}: after window"
                );
            }
        }
    }

    #[test]
    fn at_most_one_crash_group_and_scales_are_safe() {
        let cfg = ChaosConfig {
            max_faults: 8,
            ..ChaosConfig::default()
        };
        let s = space();
        for seed in 0..128 {
            let plan = generate(&s, &cfg, seed);
            let mut crashed = std::collections::BTreeSet::new();
            for ev in plan.events() {
                match ev.action {
                    FaultAction::TargetCrash(p) => {
                        crashed.insert(p >> 16);
                    }
                    FaultAction::SlowDisk { scale, .. }
                    | FaultAction::NicBrownout { scale, .. } => {
                        assert!(
                            scale > 0.0 && scale <= 1.0 && scale.is_finite(),
                            "seed {seed}: unsafe scale {scale}"
                        );
                    }
                    _ => {}
                }
            }
            assert!(crashed.len() <= 1, "seed {seed}: crashed {crashed:?}");
        }
    }

    #[test]
    fn degradations_are_paired_with_recoveries() {
        let cfg = ChaosConfig::default();
        let s = space();
        for seed in 0..64 {
            let plan = generate(&s, &cfg, seed);
            let mut degraded: std::collections::BTreeMap<(u8, u64), i64> =
                std::collections::BTreeMap::new();
            for ev in plan.clone().into_events() {
                match ev.action {
                    FaultAction::SlowDisk { resource, scale } => {
                        let k = (0u8, resource.0 as u64);
                        if scale < 1.0 {
                            *degraded.entry(k).or_default() += 1;
                        } else {
                            *degraded.entry(k).or_default() -= 1;
                        }
                    }
                    FaultAction::NicBrownout { resource, scale } => {
                        let k = (1u8, resource.0 as u64);
                        if scale < 1.0 {
                            *degraded.entry(k).or_default() += 1;
                        } else {
                            *degraded.entry(k).or_default() -= 1;
                        }
                    }
                    FaultAction::DelayedCompletion { payload, extra_ns } => {
                        let k = (2u8, payload);
                        if extra_ns > 0 {
                            *degraded.entry(k).or_default() += 1;
                        } else {
                            *degraded.entry(k).or_default() -= 1;
                        }
                    }
                    _ => {}
                }
            }
            assert!(
                degraded.values().all(|&n| n == 0),
                "seed {seed}: unpaired degradations {degraded:?}"
            );
        }
    }

    #[test]
    fn empty_space_or_budget_yields_empty_plan() {
        let cfg = ChaosConfig::default();
        assert!(generate(&ChaosSpace::default(), &cfg, 1).is_empty());
        let zero = ChaosConfig {
            max_faults: 0,
            ..cfg
        };
        assert!(generate(&space(), &zero, 1).is_empty());
    }

    fn rebalance_space() -> ChaosSpace {
        ChaosSpace {
            add_servers: vec![4, 5],
            drain_servers: vec![0, 1],
            migration_crash_groups: vec![vec![3 << 16, (3 << 16) | 1]],
            ..space()
        }
    }

    #[test]
    fn rebalance_dimensions_sample_with_correct_timing() {
        let cfg = ChaosConfig {
            max_faults: 8,
            ..ChaosConfig::default()
        };
        let s = rebalance_space();
        let half = cfg.window_start.0 + cfg.window_ns / 2;
        let (mut saw_add, mut saw_drain, mut saw_late_crash) = (false, false, false);
        for seed in 0..256 {
            let plan = generate(&s, &cfg, seed);
            let mut added = std::collections::BTreeSet::new();
            let mut drained = std::collections::BTreeSet::new();
            let mut crashed_groups = std::collections::BTreeSet::new();
            for ev in plan.events() {
                match ev.action {
                    FaultAction::AddServer { server } => {
                        saw_add = true;
                        assert!(ev.at.0 < half, "seed {seed}: add in first half");
                        assert!(added.insert(server), "seed {seed}: rank added twice");
                    }
                    FaultAction::DrainServer { server } => {
                        saw_drain = true;
                        assert!(ev.at.0 < half, "seed {seed}: drain in first half");
                        assert!(drained.insert(server), "seed {seed}: rank drained twice");
                    }
                    FaultAction::TargetCrash(p) => {
                        crashed_groups.insert(p >> 16);
                        if p >> 16 == 3 {
                            saw_late_crash = true;
                            assert!(
                                ev.at.0 >= half,
                                "seed {seed}: migration crash must land in the second half"
                            );
                        }
                    }
                    _ => {}
                }
            }
            // migration crashes share the ordinary crash-group budget
            assert!(
                crashed_groups.len() <= cfg.max_crash_groups,
                "seed {seed}: crashed {crashed_groups:?}"
            );
        }
        assert!(
            saw_add && saw_drain && saw_late_crash,
            "dimensions unsampled"
        );
    }

    #[test]
    fn rot_dimension_samples_within_shard_bound_and_crash_budget() {
        let cfg = ChaosConfig {
            max_faults: 8,
            ..ChaosConfig::default()
        };
        let s = ChaosSpace {
            rot_shards: 3,
            ..space()
        };
        let mut saw_rot = false;
        for seed in 0..256 {
            let plan = generate(&s, &cfg, seed);
            let mut crashed = std::collections::BTreeSet::new();
            let mut rots = 0usize;
            for ev in plan.events() {
                match ev.action {
                    FaultAction::BitRot { shard, .. } => {
                        saw_rot = true;
                        rots += 1;
                        assert!(shard < 3, "seed {seed}: shard {shard} out of bounds");
                        assert!(
                            ev.at.0 <= cfg.window_start.0 + cfg.window_ns,
                            "seed {seed}: rot outside window"
                        );
                    }
                    FaultAction::TargetCrash(p) => {
                        crashed.insert(p >> 16);
                    }
                    _ => {}
                }
            }
            // rot shares the crash-group budget: one rotten copy or one
            // downed fault domain, never both
            assert!(
                rots + crashed.len() <= cfg.max_crash_groups,
                "seed {seed}: {rots} rots + {crashed:?} crashes"
            );
        }
        assert!(saw_rot, "rot dimension unsampled");
    }

    #[test]
    fn rot_free_spaces_draw_the_stream_they_always_did() {
        // Archived-digest compatibility: enabling the dimension must not
        // perturb schedules sampled from spaces that leave it off.
        let cfg = ChaosConfig::default();
        let legacy = space();
        for seed in 0..32 {
            assert_eq!(
                generate(&legacy, &cfg, seed),
                generate(
                    &ChaosSpace {
                        rot_shards: 0,
                        ..legacy.clone()
                    },
                    &cfg,
                    seed
                ),
            );
        }
        let rotty = ChaosSpace {
            rot_shards: 2,
            ..space()
        };
        for seed in 0..32 {
            let plan = generate(&rotty, &cfg, seed);
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(back, plan, "seed {seed}");
        }
    }

    #[test]
    fn rebalance_plans_survive_json_round_trip() {
        let cfg = ChaosConfig {
            max_faults: 8,
            ..ChaosConfig::default()
        };
        let s = rebalance_space();
        for seed in 0..32 {
            let plan = generate(&s, &cfg, seed);
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(back, plan, "seed {seed}");
        }
    }

    #[test]
    fn generated_plans_survive_json_round_trip() {
        let cfg = ChaosConfig::default();
        let s = space();
        for seed in 0..32 {
            let plan = generate(&s, &cfg, seed);
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(back, plan, "seed {seed}");
        }
    }
}
