//! The FDB archive/retrieve interface and its three storage backends.

use crate::key::{FieldKey, KeyQuery};
use cluster::payload::{Payload, ReadPayload};
use simkit::Step;

/// Errors surfaced by FDB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdbError {
    /// Requested field was never archived.
    FieldNotFound,
    /// The underlying store failed.
    Backend(&'static str),
}

impl daos_core::Retriable for FdbError {
    /// `Backend("transient")` is the mapped form of a retriable
    /// lower-layer fault (each backend's `map_*` produces it for
    /// timeouts/target-down errors); everything else is terminal.
    fn is_retriable(&self) -> bool {
        matches!(self, FdbError::Backend("transient"))
    }
}

/// The FDB client interface: archive and retrieve weather fields by
/// scientific key, with the storage system fully abstracted away —
/// exactly the role FDB plays at ECMWF.
pub trait Fdb {
    /// Per-process preparation (create file pairs, index objects…);
    /// benchmark harnesses run this outside the measured window.
    fn setup_proc(&mut self, node: usize, proc: usize) -> Result<Step, FdbError> {
        let _ = (node, proc);
        Ok(Step::Noop)
    }

    /// Archive one field written by `proc` running on client `node`.
    fn archive(
        &mut self,
        node: usize,
        proc: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError>;

    /// Flush buffered state for `proc` (transactional commit).
    fn flush(&mut self, node: usize, proc: usize) -> Result<Step, FdbError>;

    /// Retrieve one field.
    fn retrieve(
        &mut self,
        node: usize,
        proc: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError>;

    /// List archived fields matching a partial key (a MARS-style
    /// request).  The returned step models the index traversal.
    fn list(&mut self, node: usize, query: &KeyQuery) -> Result<(Vec<FieldKey>, Step), FdbError>;
}
