//! # ior-bench — an IOR-like parallel I/O benchmark engine
//!
//! Reproduces the workload §II-A1 describes: concurrent processes each
//! create a file/object, synchronise, and issue a sequence of
//! equally-sized write or read operations.  The engine exposes every
//! backend the paper measures:
//!
//! * **libdaos** — one DAOS Array per process;
//! * **DFS** — one file per process via libdfs;
//! * **POSIX** — one file per process through any [`PosixFs`] mount
//!   (DFUSE, DFUSE+IL, or Lustre);
//! * **HDF5** — through `hdf5-lite`, either on a POSIX mount (the VFD)
//!   or natively on DAOS (the VOL connector, container per process);
//! * **librados** — one RADOS object per process (which is why the
//!   paper limits these runs to 100 × 1 MiB per process: the
//!   132 MiB object-size ceiling).
//!
//! The engine implements [`cluster::bench::ProcWorkload`]; the harness
//! in `benchkit` drives it and applies the paper's bandwidth definition.
//! The [`mdtest`] module adds the IO500-style metadata benchmark backing
//! the paper's metadata-performance claims (C4).

pub mod mdtest;

pub use mdtest::{MdPhase, Mdtest, MdtestConfig};

use ceph_sim::CephSystem;
use cluster::bench::{pin_round_robin, Phase, ProcWorkload};
use cluster::payload::Payload;
use cluster::posix::{FileId, PosixFs};
use daos_core::{ContainerId, DaosSystem, ObjectClass, Oid, RetryExec, RetryPolicy, RetryStats};
use daos_dfs::Dfs;
use hdf5_lite::{H5DaosFile, H5PosixFile, H5Runtime};
use simkit::Step;
use std::cell::RefCell;
use std::rc::Rc;

/// Op ordering within a file (IOR's `-z` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOrder {
    /// Consecutive offsets (the paper's runs).
    Sequential,
    /// A per-process pseudorandom permutation of the offsets.
    Random,
}

/// IOR run configuration (the subset of IOR options the paper uses).
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Parallel processes.
    pub procs: usize,
    /// Client nodes they are pinned over.
    pub client_nodes: usize,
    /// Transfer size per operation (1 MiB in most figures, 1 KiB in
    /// Fig. 2).
    // simlint::dim(bytes)
    pub transfer_size: u64,
    /// Operations per process (10k in the paper; scaled down by default
    /// in the harness).
    pub ops_per_proc: usize,
    /// One file/object per process (the paper's setting) or a single
    /// shared file.
    pub file_per_proc: bool,
    /// Offset ordering (`-z` for random).
    pub access: AccessOrder,
    /// In-flight operations per process (1 = synchronous; >1 models the
    /// libdaos event-queue / asynchronous descriptors).
    pub queue_depth: usize,
    /// Current phase.
    pub phase: Phase,
    /// Tolerate terminally-unavailable reads instead of aborting: the
    /// failed op costs nothing and is counted in
    /// [`Ior::unavailable_reads`].  Chaos runs over unreplicated data
    /// set this — data loss is the oracles' verdict to deliver, not the
    /// benchmark driver's.
    pub tolerate_unavailable: bool,
}

impl IorConfig {
    /// The paper's standard configuration at a chosen op count.
    pub fn new(procs: usize, client_nodes: usize, ops: usize) -> IorConfig {
        IorConfig {
            procs,
            client_nodes,
            transfer_size: 1 << 20,
            ops_per_proc: ops,
            file_per_proc: true,
            access: AccessOrder::Sequential,
            queue_depth: 1,
            phase: Phase::Write,
            tolerate_unavailable: false,
        }
    }
}

/// The storage backend an IOR run drives.
#[allow(clippy::large_enum_variant)] // backends are constructed once per run
pub enum IorBackend {
    /// Native libdaos: one Array per process.
    Daos {
        /// Shared deployed pool.
        daos: Rc<RefCell<DaosSystem>>,
        /// Container to create Arrays in.
        cid: ContainerId,
        /// Object class for the Arrays (`SX` in Fig. 1).
        oclass: ObjectClass,
    },
    /// libdfs: one file per process.
    Dfs(Dfs),
    /// Any POSIX mount: DFUSE, DFUSE+IL or Lustre.
    Posix(Box<dyn PosixFs>),
    /// HDF5 on a POSIX mount (the VFD driver).
    Hdf5Posix {
        /// HDF5 library runtime (per-node ceilings).
        rt: H5Runtime,
        /// The mount.
        fs: Box<dyn PosixFs>,
    },
    /// HDF5 through the DAOS VOL connector (container per process).
    Hdf5Daos {
        /// HDF5 library runtime.
        rt: H5Runtime,
        /// Shared deployed pool.
        daos: Rc<RefCell<DaosSystem>>,
        /// Object class for dataset objects.
        oclass: ObjectClass,
    },
    /// librados: one object per process.
    Rados(CephSystem),
}

enum ProcState {
    Empty,
    Array(Oid),
    File(FileId),
    H5Posix(H5PosixFile),
    H5Daos(H5DaosFile),
    Object(String),
}

/// An IOR run: configuration, backend, per-process state.
pub struct Ior {
    cfg: IorConfig,
    backend: IorBackend,
    pins: Vec<usize>,
    state: Vec<ProcState>,
    /// Per-process offset permutations for [`AccessOrder::Random`].
    shuffles: Vec<Vec<u32>>,
    /// Retry machinery around per-op backend calls (off by default).
    retry: RetryExec,
    /// Reads that failed terminally under
    /// [`IorConfig::tolerate_unavailable`].
    unavailable_reads: usize,
}

impl Ior {
    /// Create a run over a backend.
    pub fn new(cfg: IorConfig, backend: IorBackend) -> Ior {
        let pins = pin_round_robin(cfg.procs, cfg.client_nodes);
        let state = (0..cfg.procs).map(|_| ProcState::Empty).collect();
        let shuffles = match cfg.access {
            AccessOrder::Sequential => Vec::new(),
            AccessOrder::Random => (0..cfg.procs)
                .map(|p| {
                    let mut v: Vec<u32> = (0..cfg.ops_per_proc as u32).collect();
                    let mut rng = simkit::SplitMix64::new(0xacce55 ^ p as u64);
                    for i in (1..v.len()).rev() {
                        let j = rng.next_below(i as u64 + 1) as usize;
                        v.swap(i, j);
                    }
                    v
                })
                .collect(),
        };
        Ior {
            cfg,
            backend,
            pins,
            state,
            shuffles,
            retry: RetryExec::disabled(),
            unavailable_reads: 0,
        }
    }

    /// Configure retry/timeout/backoff around every benchmark op
    /// (`seed` drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    /// Reads that failed terminally and were tolerated (always 0 unless
    /// [`IorConfig::tolerate_unavailable`] is set).
    pub fn unavailable_reads(&self) -> usize {
        self.unavailable_reads
    }

    /// Switch phase (the paper always writes first, then reads).
    pub fn set_phase(&mut self, phase: Phase) {
        self.cfg.phase = phase;
    }

    /// The active configuration.
    pub fn config(&self) -> &IorConfig {
        &self.cfg
    }

    /// The backend (for post-run inspection in tests).
    pub fn backend(&self) -> &IorBackend {
        &self.backend
    }

    fn payload(&self) -> Payload {
        Payload::Sized(self.cfg.transfer_size)
    }

    fn op_offset(&self, proc: usize, idx: usize) -> u64 {
        let idx = match self.cfg.access {
            AccessOrder::Sequential => idx as u64,
            AccessOrder::Random => self.shuffles[proc][idx] as u64,
        };
        if self.cfg.file_per_proc {
            idx * self.cfg.transfer_size
        } else {
            // segmented shared file: process blocks side by side
            (proc as u64 * self.cfg.ops_per_proc as u64 + idx) * self.cfg.transfer_size
        }
    }

    fn posix_path(&self, proc: usize) -> String {
        if self.cfg.file_per_proc {
            format!("/ior/testFile.{proc:05}")
        } else {
            "/ior/testFile".to_string()
        }
    }
}

impl ProcWorkload for Ior {
    fn procs(&self) -> usize {
        self.cfg.procs
    }

    fn node_of(&self, proc: usize) -> usize {
        self.pins[proc]
    }

    fn ops_per_proc(&self) -> usize {
        self.cfg.ops_per_proc
    }

    fn bytes_per_op(&self) -> f64 {
        self.cfg.transfer_size as f64
    }

    fn queue_depth(&self) -> usize {
        self.cfg.queue_depth
    }

    // simlint::allow(panic-path) — benchmark setup: a failed create/open before measurement is a scenario-configuration error, not degraded-mode state
    fn setup(&mut self, proc: usize) -> Step {
        let node = self.pins[proc];
        if self.cfg.phase == Phase::Read && !matches!(self.state[proc], ProcState::Empty) {
            // read phase reuses write-phase files/objects
            return Step::Noop;
        }
        let path = self.posix_path(proc);
        let step = match &mut self.backend {
            IorBackend::Daos { daos, cid, oclass } => {
                let (oid, s) = daos
                    .borrow_mut()
                    .array_create(node, *cid, *oclass, 1 << 20)
                    .expect("array create");
                self.state[proc] = ProcState::Array(oid);
                s
            }
            IorBackend::Dfs(dfs) => {
                let mkdir = dfs.mkdir(node, "/ior").unwrap_or(Step::Noop);
                let (f, s) = dfs.open(node, &path, true).expect("open");
                self.state[proc] = ProcState::File(f);
                mkdir.then(s)
            }
            IorBackend::Posix(fs) => {
                let mkdir = fs.mkdir(node, "/ior").unwrap_or(Step::Noop);
                let (f, s) = fs.open(node, &path, true).expect("open");
                self.state[proc] = ProcState::File(f);
                mkdir.then(s)
            }
            IorBackend::Hdf5Posix { rt, fs } => {
                let mkdir = fs.mkdir(node, "/ior").unwrap_or(Step::Noop);
                let h5path = format!("/ior/testFile.{proc:05}.h5");
                let (h5, s) = H5PosixFile::create(rt, fs.as_mut(), node, &h5path).expect("h5");
                self.state[proc] = ProcState::H5Posix(h5);
                mkdir.then(s)
            }
            IorBackend::Hdf5Daos { rt, daos, oclass } => {
                let (h5, s) = H5DaosFile::create(rt, daos, node, *oclass).expect("h5");
                self.state[proc] = ProcState::H5Daos(h5);
                s
            }
            IorBackend::Rados(_) => {
                self.state[proc] = ProcState::Object(format!("ior.obj.{proc:05}"));
                Step::Noop
            }
        };
        Step::span("ior", "setup", 0, step)
    }

    // simlint::allow(panic-path) — benchmark driver: a failure that survives the retry executor is a scenario-configuration error; aborting loudly beats reporting skewed bandwidth
    fn op(&mut self, proc: usize, idx: usize) -> Step {
        let node = self.pins[proc];
        let off = self.op_offset(proc, idx);
        let len = self.cfg.transfer_size;
        let phase = self.cfg.phase;
        let payload = self.payload();
        let tolerate = self.cfg.tolerate_unavailable;
        let retry = &mut self.retry;
        let unavailable = &mut self.unavailable_reads;
        let step = match (&mut self.backend, &mut self.state[proc]) {
            (IorBackend::Daos { daos, cid, .. }, ProcState::Array(oid)) => match phase {
                Phase::Write => retry
                    .run_step(|| {
                        daos.borrow_mut()
                            .array_write(node, *cid, *oid, off, payload.clone())
                    })
                    .expect("write"),
                Phase::Read => {
                    match retry.run(|| daos.borrow_mut().array_read(node, *cid, *oid, off, len)) {
                        Ok((_, s)) => s,
                        Err(_) if tolerate => {
                            *unavailable += 1;
                            Step::Noop
                        }
                        Err(e) => panic!("read: {e:?}"),
                    }
                }
            },
            (IorBackend::Dfs(dfs), ProcState::File(f)) => match phase {
                Phase::Write => retry
                    .run_step(|| dfs.write(node, *f, off, payload.clone()))
                    .expect("write"),
                Phase::Read => retry.run(|| dfs.read(node, *f, off, len)).expect("read").1,
            },
            (IorBackend::Posix(fs), ProcState::File(f)) => match phase {
                Phase::Write => retry
                    .run_step(|| fs.write(node, *f, off, payload.clone()))
                    .expect("write"),
                Phase::Read => retry.run(|| fs.read(node, *f, off, len)).expect("read").1,
            },
            (IorBackend::Hdf5Posix { rt, fs }, ProcState::H5Posix(h5)) => {
                let name = format!("ds{idx:06}");
                match phase {
                    Phase::Write => retry
                        .run_step(|| h5.dataset_write(rt, fs.as_mut(), &name, payload.clone()))
                        .expect("write"),
                    Phase::Read => {
                        retry
                            .run(|| h5.dataset_read(rt, fs.as_mut(), &name))
                            .expect("read")
                            .1
                    }
                }
            }
            (IorBackend::Hdf5Daos { rt, .. }, ProcState::H5Daos(h5)) => {
                let name = format!("ds{idx:06}");
                match phase {
                    Phase::Write => retry
                        .run_step(|| h5.dataset_write(rt, &name, payload.clone()))
                        .expect("write"),
                    Phase::Read => retry.run(|| h5.dataset_read(rt, &name)).expect("read").1,
                }
            }
            (IorBackend::Rados(ceph), ProcState::Object(name)) => match phase {
                Phase::Write => retry
                    .run_step(|| ceph.write(node, name, off, payload.clone()))
                    .expect("write"),
                Phase::Read => {
                    retry
                        .run(|| ceph.read(node, name, off, len))
                        .expect("read")
                        .1
                }
            },
            _ => panic!("op before setup for proc {proc}"),
        };
        let name = match phase {
            Phase::Write => "write",
            Phase::Read => "read",
        };
        Step::span("ior", name, len, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DataMode};
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink(SimTime::ZERO));
    }

    fn daos_backend() -> (Scheduler, IorBackend) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 2).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let backend = IorBackend::Daos {
            daos: Rc::new(RefCell::new(daos)),
            cid,
            oclass: ObjectClass::SX,
        };
        (sched, backend)
    }

    #[test]
    fn offsets_per_mode() {
        let (_s, backend) = daos_backend();
        let ior = Ior::new(IorConfig::new(4, 2, 10), backend);
        assert_eq!(ior.op_offset(3, 5), 5 << 20, "file-per-proc restarts at 0");
        let mut cfg = IorConfig::new(4, 2, 10);
        cfg.file_per_proc = false;
        let (_s2, backend2) = daos_backend();
        let ior2 = Ior::new(cfg, backend2);
        assert_eq!(
            ior2.op_offset(3, 5),
            (3 * 10 + 5) << 20,
            "shared file segments"
        );
    }

    #[test]
    fn daos_workload_runs_both_phases() {
        let (mut sched, backend) = daos_backend();
        let mut ior = Ior::new(IorConfig::new(4, 2, 8), backend);
        for p in 0..4 {
            exec(&mut sched, ior.setup(p));
        }
        for p in 0..4 {
            for i in 0..8 {
                exec(&mut sched, ior.op(p, i));
            }
        }
        let t_after_write = sched.now();
        ior.set_phase(Phase::Read);
        for p in 0..4 {
            exec(&mut sched, ior.setup(p));
            for i in 0..8 {
                exec(&mut sched, ior.op(p, i));
            }
        }
        assert!(sched.now() > t_after_write);
    }

    #[test]
    fn pinning_spreads_processes() {
        let (_s, backend) = daos_backend();
        let ior = Ior::new(IorConfig::new(8, 2, 1), backend);
        assert_eq!(ior.node_of(0), 0);
        assert_eq!(ior.node_of(1), 1);
        assert_eq!(ior.node_of(2), 0);
    }

    #[test]
    fn rados_backend_object_per_proc() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            ceph_sim::CephDataMode::Sized,
            ceph_sim::CephPoolOpts::default(),
        )
        .unwrap();
        let mut ior = Ior::new(IorConfig::new(2, 1, 4), IorBackend::Rados(ceph));
        for p in 0..2 {
            exec(&mut sched, ior.setup(p));
            for i in 0..4 {
                exec(&mut sched, ior.op(p, i));
            }
        }
        if let IorBackend::Rados(ceph) = ior.backend() {
            assert_eq!(ceph.object_count(), 2, "one object per process");
        }
    }

    #[test]
    fn hdf5_daos_backend_container_per_proc() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let rt = H5Runtime::new(&mut sched, 1, &topo.cal);
        let daos = Rc::new(RefCell::new(DaosSystem::deploy(
            &topo,
            &mut sched,
            2,
            DataMode::Sized,
        )));
        let mut ior = Ior::new(
            IorConfig::new(3, 1, 2),
            IorBackend::Hdf5Daos {
                rt,
                daos: daos.clone(),
                oclass: ObjectClass::SX,
            },
        );
        for p in 0..3 {
            exec(&mut sched, ior.setup(p));
            for i in 0..2 {
                exec(&mut sched, ior.op(p, i));
            }
        }
        // three processes -> three containers, each with 2 data objects
        // + 1 md KV
        for cid in 0..3u32 {
            let n = daos.borrow().object_count(ContainerId(cid)).unwrap();
            assert_eq!(n, 3);
        }
    }
}

#[cfg(test)]
mod access_order_tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DaosSystem, DataMode};
    use simkit::{run, OpId, Scheduler, World};
    use std::cell::RefCell;
    use std::collections::HashSet;
    use std::rc::Rc;

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    #[test]
    fn random_order_is_a_permutation() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 1, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let mut cfg = IorConfig::new(3, 1, 50);
        cfg.access = AccessOrder::Random;
        let ior = Ior::new(
            cfg,
            IorBackend::Daos {
                daos: Rc::new(RefCell::new(daos)),
                cid,
                oclass: ObjectClass::SX,
            },
        );
        for p in 0..3 {
            let offs: HashSet<u64> = (0..50).map(|i| ior.op_offset(p, i)).collect();
            assert_eq!(offs.len(), 50, "all offsets distinct");
            let max = *offs.iter().max().unwrap();
            assert_eq!(max, 49 << 20, "covers the full extent");
            // actually shuffled: not identical to sequential
            let seq: Vec<u64> = (0..50).map(|i| (i as u64) << 20).collect();
            let got: Vec<u64> = (0..50).map(|i| ior.op_offset(p, i)).collect();
            assert_ne!(got, seq, "proc {p} must be permuted");
        }
        // processes get different permutations
        let a: Vec<u64> = (0..50).map(|i| ior.op_offset(0, i)).collect();
        let b: Vec<u64> = (0..50).map(|i| ior.op_offset(1, i)).collect();
        assert_ne!(a, b);
    }
}
