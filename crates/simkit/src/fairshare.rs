//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each traversing a list of resources, and a
//! capacity per resource, progressive filling repeatedly finds the most
//! contended resource (minimum `remaining capacity / unfrozen flows`),
//! freezes every flow crossing it at that fair share, subtracts the
//! frozen rates everywhere, and repeats.  The result is the unique
//! max-min fair allocation: no flow's rate can be raised without lowering
//! the rate of a flow that is no better off.
//!
//! The solver is a standalone struct with reusable scratch buffers so the
//! engine can recompute allocations thousands of times per run without
//! allocating.

use crate::step::ResourceId;
use crate::units::Rate;

/// Reusable max-min fair-share solver.
#[derive(Debug, Default)]
pub struct FairShare {
    // Dense per-flow state for the current solve.
    keys: Vec<u32>,
    path_start: Vec<u32>,
    path_len: Vec<u32>,
    paths: Vec<u32>,
    rates: Vec<Rate>,
    frozen: Vec<bool>,
    // Lazily-initialised per-resource state (indexed by resource id).
    rem: Vec<Rate>,
    nflows: Vec<u32>,
    res_flows: Vec<Vec<u32>>,
    stamp: Vec<u32>,
    cur_stamp: u32,
    touched: Vec<u32>,
    tolerance: f64,
}

impl FairShare {
    /// Fresh solver.
    pub fn new() -> Self {
        FairShare::default()
    }

    /// Start a new solve; `n_resources` is the total number of registered
    /// resources (resource ids must be `< n_resources`).
    pub fn begin(&mut self, n_resources: usize) {
        self.keys.clear();
        self.path_start.clear();
        self.path_len.clear();
        self.paths.clear();
        self.rates.clear();
        self.frozen.clear();
        for &r in &self.touched {
            self.res_flows[r as usize].clear();
        }
        self.touched.clear();
        if self.rem.len() < n_resources {
            self.rem.resize(n_resources, Rate::ZERO);
            self.nflows.resize(n_resources, 0);
            self.res_flows.resize_with(n_resources, Vec::new);
            self.stamp.resize(n_resources, 0);
        }
        self.cur_stamp = self.cur_stamp.wrapping_add(1);
    }

    /// Register one flow (identified by an arbitrary `key`) with its path.
    pub fn add_flow(&mut self, key: u32, path: &[ResourceId]) {
        debug_assert!(
            !path.is_empty(),
            "flows must traverse at least one resource"
        );
        let fi = self.keys.len() as u32;
        self.keys.push(key);
        self.path_start.push(self.paths.len() as u32);
        self.path_len.push(path.len() as u32);
        self.rates.push(Rate::ZERO);
        self.frozen.push(false);
        for &ResourceId(r) in path {
            self.paths.push(r);
            let ri = r as usize;
            if self.stamp[ri] != self.cur_stamp {
                self.stamp[ri] = self.cur_stamp;
                self.nflows[ri] = 0;
                self.res_flows[ri].clear();
                self.touched.push(r);
            }
            self.nflows[ri] += 1;
            self.res_flows[ri].push(fi);
        }
    }

    /// Set the bottleneck tolerance band (relative).  With a non-zero
    /// tolerance, every resource whose fair share lies within
    /// `min × (1 + tol)` freezes its flows in the same pass — each at
    /// its *own* current fair share, so rates stay within `tol` of the
    /// exact max-min allocation while the number of filling iterations
    /// collapses from `O(resources)` to a handful.  Zero (the default)
    /// is the exact algorithm.
    pub fn set_tolerance(&mut self, tol: f64) {
        assert!((0.0..1.0).contains(&tol));
        self.tolerance = tol;
    }

    /// Solve with the given per-resource capacities (units/second).
    ///
    /// Returns the number of progressive-filling iterations.  Rates are
    /// then available through [`FairShare::results`].
    // simlint::hot_root — max-min solver: runs on every rate recomputation
    pub fn solve(&mut self, caps: &[Rate]) -> usize {
        for &r in &self.touched {
            self.rem[r as usize] = caps[r as usize].max(Rate::ZERO);
        }
        let band = 1.0 + self.tolerance + 1e-12;
        let mut iters = 0usize;
        let mut unfrozen = self.keys.len();
        while unfrozen > 0 {
            iters += 1;
            // Find the bottleneck fair share.
            let mut best_fair = Rate(f64::INFINITY);
            for &r in &self.touched {
                let ri = r as usize;
                let n = self.nflows[ri];
                if n > 0 {
                    let fair = self.rem[ri] / n as f64;
                    if fair < best_fair {
                        best_fair = fair;
                    }
                }
            }
            debug_assert!(
                best_fair.get().is_finite(),
                "unfrozen flow with no live resource"
            );
            let cutoff = best_fair.max(Rate::ZERO) * band;
            // Freeze the flows of every resource inside the band, each at
            // the resource's own current share.  Freezing updates `rem`
            // and `nflows`, so re-check the share as we go; resources
            // pushed above the cutoff by earlier freezes wait for the
            // next iteration.
            for ti in 0..self.touched.len() {
                let ri = self.touched[ti] as usize;
                let n = self.nflows[ri];
                if n == 0 {
                    continue;
                }
                let fair = (self.rem[ri] / n as f64).max(Rate::ZERO);
                if fair > cutoff {
                    continue;
                }
                let flows_here = std::mem::take(&mut self.res_flows[ri]);
                for &fi in &flows_here {
                    let f = fi as usize;
                    if self.frozen[f] {
                        continue;
                    }
                    self.frozen[f] = true;
                    self.rates[f] = fair;
                    unfrozen -= 1;
                    let s = self.path_start[f] as usize;
                    let l = self.path_len[f] as usize;
                    for &r in &self.paths[s..s + l] {
                        let pi = r as usize;
                        self.rem[pi] -= fair;
                        self.nflows[pi] -= 1;
                    }
                }
                self.res_flows[ri] = flows_here;
            }
        }
        iters
    }

    /// `(key, rate)` pairs from the last solve.
    pub fn results(&self) -> impl Iterator<Item = (u32, Rate)> + '_ {
        self.keys.iter().copied().zip(self.rates.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(caps: &[f64], flows: &[&[u32]]) -> Vec<f64> {
        let mut fs = FairShare::new();
        fs.begin(caps.len());
        for (i, path) in flows.iter().enumerate() {
            let p: Vec<ResourceId> = path.iter().map(|&r| ResourceId(r)).collect();
            fs.add_flow(i as u32, &p);
        }
        let caps: Vec<Rate> = caps.iter().map(|&c| Rate(c)).collect();
        fs.solve(&caps);
        let mut rates = vec![0.0; flows.len()];
        for (k, r) in fs.results() {
            rates[k as usize] = r.get();
        }
        rates
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = solve(&[10.0], &[&[0]]);
        assert!((rates[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn equal_split_on_shared_resource() {
        let rates = solve(&[12.0], &[&[0], &[0], &[0]]);
        for r in rates {
            assert!((r - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_maxmin_example() {
        // Two resources: r0 cap 10 shared by f0,f1; r1 cap 3 crossed by f1.
        // f1 is bottlenecked at 3 by r1, f0 takes the slack: 7.
        let rates = solve(&[10.0, 3.0], &[&[0], &[0, 1]]);
        assert!((rates[1] - 3.0).abs() < 1e-12, "f1 pinned at narrow link");
        assert!(
            (rates[0] - 7.0).abs() < 1e-12,
            "f0 takes remaining capacity"
        );
    }

    #[test]
    fn three_link_chain() {
        // Kleinrock's example: links of cap 1; f0 spans both links,
        // f1 on link0 only, f2 on link1 only.  Max-min: all at 0.5.
        let rates = solve(&[1.0, 1.0], &[&[0, 1], &[0], &[1]]);
        for r in &rates {
            assert!((r - 0.5).abs() < 1e-12, "{rates:?}");
        }
    }

    #[test]
    fn zero_capacity_resource_stalls_flows() {
        let rates = solve(&[0.0, 10.0], &[&[0, 1], &[1]]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_paths() {
        // Flow through two tight resources is limited by the tighter one
        // after sharing.
        let rates = solve(&[6.0, 4.0], &[&[0], &[0, 1], &[1]]);
        // r1: two flows -> fair 2.0 each; r0 then has 6-2=4 for f0.
        assert!((rates[1] - 2.0).abs() < 1e-12);
        assert!((rates[2] - 2.0).abs() < 1e-12);
        assert!((rates[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solver_is_reusable() {
        let mut fs = FairShare::new();
        for _ in 0..3 {
            fs.begin(2);
            fs.add_flow(7, &[ResourceId(0)]);
            fs.add_flow(9, &[ResourceId(0), ResourceId(1)]);
            fs.solve(&[Rate(10.0), Rate(2.0)]);
            let mut m = std::collections::HashMap::new();
            for (k, r) in fs.results() {
                m.insert(k, r.get());
            }
            assert!((m[&9] - 2.0).abs() < 1e-12);
            assert!((m[&7] - 8.0).abs() < 1e-12);
        }
    }
}
