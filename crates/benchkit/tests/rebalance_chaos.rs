//! End-to-end rebalance chaos acceptance: a seeded swarm of live
//! membership changes (server adds, drains, crashes aimed at migration
//! traffic) runs green over the redundant scenario classes, and a
//! deliberately planted lost-extent schedule against unreplicated `S1`
//! data is caught by the durability oracle, shrunk to a minimal
//! reproducer, archived to JSON, and replayed byte-identically from the
//! archive.

use benchkit::chaos::{parse_schedule, schedule_json};
use benchkit::rebalance::{
    default_rebalance_spec, replay_archived_rebalance, run_planned_rebalance_case,
    run_rebalance_swarm, shrink_failing_rebalance, RebalanceScenario,
};
use cluster::Calibration;
use daos_core::{OracleKind, TargetId};
use simkit::{FaultAction, FaultPlan, SimTime};

#[test]
fn seeded_rebalance_swarm_is_green_over_redundant_classes() {
    let mut spec = default_rebalance_spec();
    spec.ops_per_proc = 8;
    let cal = Calibration::default();

    let swarm = run_rebalance_swarm(&spec, &cal, &[1, 2]);
    assert_eq!(
        swarm.verdicts.len(),
        2 * RebalanceScenario::SWARM.len(),
        "every seed runs every swarm scenario"
    );
    assert!(swarm.passed(), "rebalance swarm:\n{}", swarm.render());
    for v in &swarm.verdicts {
        assert!(
            v.oracle.checked_kv + v.oracle.checked_extents > 0,
            "case {} seed {} audited nothing",
            v.scenario,
            v.seed
        );
    }
}

/// A schedule that genuinely loses acknowledged extents: the workload
/// writes unreplicated `S1` data across both deployed servers, server 0
/// is drained (its shards start evacuating toward server 1), and then
/// every target of server 1 crashes.  Whatever originated on server 1
/// plus whatever migration already landed there is gone — `S1` has no
/// redundancy to rebuild from.  The drain and fifteen of the sixteen
/// crashes are shrinkable noise: one crashed target holding acked data
/// already violates durability.
fn planted_lost_extent_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.at(SimTime(1_000_000), FaultAction::DrainServer { server: 0 });
    for target in 0..16 {
        plan.at(
            SimTime(2_000_000),
            FaultAction::TargetCrash(TargetId { server: 1, target }.pack()),
        );
    }
    plan
}

#[test]
fn planted_lost_extent_is_caught_shrunk_and_replayed_from_archive() {
    let mut spec = default_rebalance_spec();
    spec.servers = 2;
    spec.client_nodes = 1;
    // a long read phase keeps work in flight well past the drain, the
    // crash volley, and the rebuild rescan, so every event fires
    spec.ops_per_proc = 64;
    let cal = Calibration::default();
    let scen = RebalanceScenario::IorEasyS1;
    let plan = planted_lost_extent_plan();

    // 1. detection: the durability oracle flags the lost extents
    let verdict = run_planned_rebalance_case(&spec, scen, &cal, 0x10EE, plan.clone());
    assert!(!verdict.passed(), "planted lost extents must be caught");
    assert!(
        verdict
            .oracle
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::AckedDurability),
        "expected an AckedDurability violation:\n{}",
        verdict.oracle.render()
    );

    // 2. shrinking: delta debugging strips the drain and the redundant
    // crashes down to a minimal reproducer
    let outcome = shrink_failing_rebalance(&spec, scen, &cal, &plan);
    assert!(outcome.reproduced, "shrinker must reproduce the failure");
    assert!(
        outcome.plan.len() <= 2,
        "minimal repro is at most a crash pair, got:\n{}",
        outcome.plan.to_json()
    );
    assert!(outcome.removed >= 15, "the crash volley was mostly noise");
    for ev in outcome.plan.events() {
        assert!(
            matches!(ev.action, FaultAction::TargetCrash(_)),
            "only crashes survive shrinking: {:?}",
            ev.action
        );
    }

    // 3. archive: JSON round-trips and the replay reruns the shrunken
    // schedule byte-identically
    let direct = run_planned_rebalance_case(&spec, scen, &cal, 0x10EE, outcome.plan.clone());
    assert!(!direct.passed(), "shrunken schedule still fails");
    let json = schedule_json(scen.name(), 0x10EE, &spec, &outcome.plan);
    let arch = parse_schedule(&json).expect("archive parses");
    assert_eq!(arch.plan.to_json(), outcome.plan.to_json());
    let replayed = replay_archived_rebalance(&arch, &cal).expect("archive replays");
    assert_eq!(
        replayed.digest, direct.digest,
        "replay from archive is byte-identical"
    );
    assert!(!replayed.passed());
}
