//! `engine_events_per_sec` — throughput of the engine event loop over
//! the seeded workload families in [`bench::engine_bench`].
//!
//! Each iteration runs a family to completion (a fixed op count, so a
//! fixed number of events); throughput trends inversely with the
//! per-event cost the stage-3 lint polices.  `repro bench-engine` runs
//! the same workloads outside criterion and gates CI on the committed
//! `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::engine_bench::{run_family, BENCH_OPS, FAMILIES};

fn engine_events_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_events_per_sec");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(20);
    for fam in FAMILIES {
        g.bench_function(fam, |b| {
            b.iter(|| {
                let r = run_family(fam, BENCH_OPS);
                assert_eq!(r.events, BENCH_OPS);
                r.digest
            });
        });
    }
    g.finish();
}

criterion_group!(benches, engine_events_per_sec);
criterion_main!(benches);
