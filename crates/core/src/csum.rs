//! End-to-end checksum codec.
//!
//! A seeded FNV-1a-style codec over stored bytes: every array chunk
//! (and every EC cell, and every KV value) carries a 64-bit checksum
//! computed at the client on update and verified on every fetch and by
//! the background scrubber.  The codec is deliberately *not* the replay
//! digest — it protects payload bytes at rest, while the replay digest
//! protects the event schedule — but both use the same FNV-1a core so
//! a single bit flip anywhere in the protected bytes flips the sum
//! with avalanche from the `xor`/multiply chain.
//!
//! The seed parameterises the offset basis, so distinct deployments
//! (or tests) can run distinct checksum domains; a stored sum from one
//! domain never verifies in another.

/// Seed every [`DaosSystem`](crate::DaosSystem) uses unless overridden:
/// the standard FNV-1a 64-bit offset basis.
pub const DEFAULT_CSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeded FNV-style checksum codec for stored payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsumCodec {
    seed: u64,
}

impl Default for CsumCodec {
    fn default() -> Self {
        CsumCodec::new(DEFAULT_CSUM_SEED)
    }
}

impl CsumCodec {
    /// A codec whose offset basis is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        CsumCodec { seed }
    }

    /// The codec's seed (for folding into state digests).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Checksum of `data`.
    pub fn sum(&self, data: &[u8]) -> u64 {
        let mut h = self.seed;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Final avalanche so trailing-byte flips spread through all 64
        // bits (plain FNV-1a leaves the last byte in the low bits).
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    /// Checksum of a sized (hole-backed) extent: no bytes at rest, so
    /// the protected quantity is the length itself.
    pub fn sum_sized(&self, len: u64) -> u64 {
        self.sum(&len.to_le_bytes())
    }

    /// Does `stored` verify against the current bytes?
    pub fn verify(&self, data: &[u8], stored: u64) -> bool {
        self.sum(data) == stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_dependent() {
        let a = CsumCodec::default();
        let b = CsumCodec::new(1234);
        assert_eq!(a.sum(b"hello"), a.sum(b"hello"));
        assert_ne!(a.sum(b"hello"), b.sum(b"hello"));
        assert_ne!(a.sum(b"hello"), a.sum(b"hellp"));
    }

    #[test]
    fn single_bit_flip_detected() {
        let c = CsumCodec::default();
        let data = vec![0xA5u8; 64];
        let stored = c.sum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    !c.verify(&flipped, stored),
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn empty_and_sized_sums_distinct() {
        let c = CsumCodec::default();
        assert_ne!(c.sum(&[]), c.sum_sized(0));
        assert_ne!(c.sum_sized(1), c.sum_sized(2));
    }
}
