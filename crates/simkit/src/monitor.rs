//! Resource utilisation accounting.
//!
//! The engine credits every resource with `rate × dt` units whenever
//! simulated time advances, giving exact busy integrals for the fluid
//! model.  Utilisation reports are used by the benchmark harness to
//! explain *which* resource bound each figure's plateau — the analysis
//! the paper performs by comparing against raw hardware bandwidth.

use crate::step::ResourceId;
use crate::time::SimTime;

/// Per-resource busy accounting.
#[derive(Debug, Default, Clone)]
pub struct Monitor {
    /// Total units moved through each resource.
    busy_units: Vec<f64>,
    enabled: bool,
}

/// One row of a utilisation report.
#[derive(Debug, Clone)]
pub struct Utilisation {
    /// Resource this row describes.
    pub resource: ResourceId,
    /// Units moved through the resource during the run.
    pub units: f64,
    /// Mean throughput over the interval, units/second.
    pub mean_rate: f64,
    /// Mean throughput as a fraction of capacity (0..=1).
    pub fraction: f64,
}

impl Monitor {
    /// A monitor that records nothing (zero overhead).
    pub fn disabled() -> Self {
        Monitor {
            busy_units: Vec::new(),
            enabled: false,
        }
    }

    /// A recording monitor.
    pub fn enabled() -> Self {
        Monitor {
            busy_units: Vec::new(),
            enabled: true,
        }
    }

    /// Whether accounting is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Credit `units` of work to `r`.
    #[inline]
    pub(crate) fn credit(&mut self, r: ResourceId, units: f64) {
        if !self.enabled {
            return;
        }
        let i = r.0 as usize;
        if self.busy_units.len() <= i {
            self.busy_units.resize(i + 1, 0.0);
        }
        self.busy_units[i] += units;
    }

    /// Units moved through `r` so far.
    pub fn units(&self, r: ResourceId) -> f64 {
        self.busy_units.get(r.0 as usize).copied().unwrap_or(0.0)
    }

    /// Snapshot of all busy integrals, padded to `n` resources.
    pub fn snapshot(&self, n: usize) -> Vec<f64> {
        let mut v = self.busy_units.clone();
        v.resize(n.max(v.len()), 0.0);
        v
    }

    /// Utilisation report over `[t0, t1]` for resources with the given
    /// capacities (indexed by resource id).
    pub fn report(&self, caps: &[f64], t0: SimTime, t1: SimTime) -> Vec<Utilisation> {
        let dt = t1.secs_since(t0);
        (0..caps.len())
            .map(|i| {
                let units = self.busy_units.get(i).copied().unwrap_or(0.0);
                let mean_rate = if dt > 0.0 { units / dt } else { 0.0 };
                let fraction = if caps[i] > 0.0 {
                    mean_rate / caps[i]
                } else {
                    0.0
                };
                Utilisation {
                    resource: ResourceId(i as u32),
                    units,
                    mean_rate,
                    fraction,
                }
            })
            .collect()
    }

    /// Drop all accumulated accounting.
    pub fn reset(&mut self) {
        self.busy_units.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut m = Monitor::disabled();
        m.credit(ResourceId(0), 5.0);
        assert_eq!(m.units(ResourceId(0)), 0.0);
    }

    #[test]
    fn credit_accumulates() {
        let mut m = Monitor::enabled();
        m.credit(ResourceId(2), 5.0);
        m.credit(ResourceId(2), 2.5);
        assert!((m.units(ResourceId(2)) - 7.5).abs() < 1e-12);
        assert_eq!(m.units(ResourceId(0)), 0.0);
    }

    #[test]
    fn report_computes_fractions() {
        let mut m = Monitor::enabled();
        m.credit(ResourceId(0), 50.0);
        let rep = m.report(&[100.0], SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!((rep[0].mean_rate - 50.0).abs() < 1e-9);
        assert!((rep[0].fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut m = Monitor::enabled();
        m.credit(ResourceId(1), 9.0);
        m.reset();
        assert_eq!(m.units(ResourceId(1)), 0.0);
    }
}
