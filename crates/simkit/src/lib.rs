//! # simkit — discrete-event, flow-level I/O cluster simulation engine
//!
//! `simkit` is the substrate every other crate in this workspace is built
//! on.  It simulates a set of **capacity resources** (NVMe devices, NIC
//! directions, metadata services, FUSE request pumps, …) and **flows**
//! traversing them.  Active flows are assigned **max-min fair** rates via
//! progressive filling, the classical fluid approximation used in
//! flow-level network simulators: a transfer occupies every resource on
//! its path simultaneously, and whenever the set of flows changes the
//! fair-share allocation is recomputed.
//!
//! Work is described as [`Step`] chains — sequential/parallel compositions
//! of fixed [`Step::Delay`]s and shared [`Step::Transfer`]s — submitted to
//! the [`Scheduler`] with an opaque [`OpId`].  A [`World`] implementation
//! receives completion callbacks and issues follow-up work, which is how
//! benchmark processes are driven.
//!
//! Design notes:
//!
//! * Time is integer nanoseconds ([`SimTime`]); symmetric processes
//!   complete in lock-step, so completions batch and one fair-share
//!   recomputation serves a whole wave of ops.  This is the property that
//!   makes thousand-process simulations cheap.
//! * The engine is deterministic: identical inputs (including RNG seeds
//!   from [`rng::SplitMix64`]) produce identical schedules.
//! * Storage-system *state* lives outside the engine in plain data
//!   structures; only *time* is simulated here.
//!
//! ```
//! use simkit::{Scheduler, Step, World, OpId, run};
//!
//! struct Once(bool);
//! impl World for Once {
//!     fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {
//!         self.0 = true;
//!     }
//! }
//!
//! let mut sched = Scheduler::new();
//! let disk = sched.add_resource("disk", 100.0); // 100 units/s
//! sched.submit(Step::transfer(50.0, [disk]), OpId(1));
//! let mut world = Once(false);
//! run(&mut sched, &mut world);
//! assert!(world.0);
//! assert_eq!(sched.now().as_secs_f64(), 0.5); // 50 units at 100 units/s
//! ```

pub mod chaos;
pub mod engine;
pub mod fairshare;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod rng;
pub mod shrink;
pub mod slab;
pub mod span;
pub mod step;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod units;

pub use chaos::{generate, ChaosConfig, ChaosSpace};
pub use engine::{run, run_digest, run_for, OpId, RunOutcome, Scheduler, World};
pub use faults::{FaultAction, FaultEvent, FaultPlan};
pub use json::Json;
pub use metrics::{
    attributed_wall_ns, chrome_trace_json, chrome_trace_json_with_counters, critical_path,
    critical_path_report, layer_histograms, Histogram, PathContribution,
};
pub use monitor::Monitor;
pub use rng::SplitMix64;
pub use shrink::{shrink, ShrinkOutcome};
pub use span::{SpanId, SpanLog, SpanMark, SpanRecord};
pub use step::{ResourceId, Step};
pub use telemetry::{
    evaluate_slos, render_slo_text, MetricId, MetricKind, MetricView, SloInputs, SloKind, SloRule,
    SloVerdict, Telemetry,
};
pub use time::SimTime;
pub use trace::{ReplayDigest, Trace};
pub use units::{Bytes, Rate, GIB, KIB, MIB};
