//! Automatic failing-schedule minimization (delta debugging).
//!
//! When a chaos swarm finds a seed whose schedule violates an invariant,
//! the raw schedule is rarely the story: most of its incidents are
//! bystanders.  [`shrink`] minimizes a failing [`FaultPlan`] against a
//! caller-supplied oracle — `fails(plan)` replays the schedule from
//! scratch and reports whether the invariant still breaks — using the
//! classical **ddmin** algorithm (Zeller & Hildebrandt, *Simplifying and
//! Isolating Failure-Inducing Input*) over the event list, followed by a
//! bounded **window-tightening** pass that halves each surviving
//! degrade→restore gap while the failure persists.
//!
//! Because the engine is deterministic, the oracle is exact (no flaky
//! reruns) and shrinking itself is deterministic: the same plan and the
//! same oracle always walk the same probe sequence to the same minimal
//! schedule.  Event ids are preserved through every probe
//! ([`FaultPlan::from_events`]), so the minimal schedule replays with the
//! surviving events' original digest identities.

use crate::faults::{FaultAction, FaultEvent, FaultPlan};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized plan (equal to the input when nothing could be
    /// removed, or when the input did not fail its oracle).
    pub plan: FaultPlan,
    /// Whether the *input* plan failed the oracle; when `false` the
    /// input was returned untouched and nothing was probed further.
    pub reproduced: bool,
    /// Total oracle invocations (each is a full deterministic replay).
    pub probes: usize,
    /// Events removed by ddmin.
    pub removed: usize,
    /// Recovery events whose windows were tightened (moved earlier).
    pub tightened: usize,
}

/// Minimize `plan` against `fails`, which must replay a candidate
/// schedule deterministically and return `true` iff the invariant
/// violation reproduces.
///
/// Guarantees on the result (the shrinker's contract, property-tested in
/// `tests/shrink_props.rs`):
///
/// * every event in the output is one of the input's events, identified
///   by id, with an equal-or-earlier firing time (subset + tightening
///   only ever moves recoveries earlier);
/// * the output still fails the oracle (when `reproduced`);
/// * the probe sequence — and therefore the output — is a pure function
///   of `(plan, oracle)`.
pub fn shrink<F: FnMut(&FaultPlan) -> bool>(plan: &FaultPlan, mut fails: F) -> ShrinkOutcome {
    let mut probes = 0usize;
    let mut check = |events: &[FaultEvent], probes: &mut usize| -> bool {
        *probes += 1;
        fails(&FaultPlan::from_events(events.to_vec()))
    };

    let original = plan.clone().into_events();
    if !check(&original, &mut probes) {
        return ShrinkOutcome {
            plan: plan.clone(),
            reproduced: false,
            probes,
            removed: 0,
            tightened: 0,
        };
    }

    // --- Stage 1: ddmin over the event set. -------------------------
    // Partition into n chunks; if the complement of any chunk still
    // fails, adopt it and re-scan at coarse granularity, otherwise
    // refine until chunks are single events.
    let mut current = original.clone();
    let mut n = 2usize.min(current.len().max(1));
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut lo = 0usize;
        while lo < current.len() {
            let hi = (lo + chunk).min(current.len());
            let complement: Vec<FaultEvent> = current[..lo]
                .iter()
                .chain(&current[hi..])
                .copied()
                .collect();
            if !complement.is_empty() && check(&complement, &mut probes) {
                current = complement;
                n = 2.min(current.len().max(1));
                reduced = true;
                break;
            }
            lo = hi;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (2 * n).min(current.len());
        }
    }
    let removed = original.len() - current.len();

    // --- Stage 2: window tightening. --------------------------------
    // For each surviving recovery, binary-halve its gap to the matching
    // degradation while the failure persists.  Moves are monotonically
    // earlier and floored at `hit + 1 ns`, so the pass terminates in at
    // most 64 probes per recovery and can never reorder a recovery
    // before its own incident.
    let mut tightened = 0usize;
    let recovery_ids: Vec<u64> = current
        .iter()
        .filter(|e| is_recovery(&e.action))
        .map(|e| e.id)
        .collect();
    for rid in recovery_ids {
        let mut moved = false;
        while let Some(i) = current.iter().position(|e| e.id == rid) {
            let key = incident_key(&current[i].action);
            let Some(hit_at) = current[..i]
                .iter()
                .rev()
                .find(|e| incident_key(&e.action) == key && !is_recovery(&e.action))
                .map(|e| e.at)
            else {
                break; // unpaired recovery (its hit was removed): leave it
            };
            if current[i].at.0 <= hit_at.0 + 1 {
                break; // already minimal
            }
            let gap = current[i].at.0 - hit_at.0;
            let mut trial = current.clone();
            trial[i].at = crate::time::SimTime(hit_at.0 + gap / 2);
            trial.sort_by_key(|e| (e.at, e.id));
            if check(&trial, &mut probes) {
                current = trial;
                moved = true;
            } else {
                break;
            }
        }
        if moved {
            tightened += 1;
        }
    }

    ShrinkOutcome {
        plan: FaultPlan::from_events(current),
        reproduced: true,
        probes,
        removed,
        tightened,
    }
}

/// Key grouping a degradation with its recovery: same component, either
/// direction.
fn incident_key(a: &FaultAction) -> (u8, u64) {
    match a {
        FaultAction::TargetCrash(p) | FaultAction::TargetRestart(p) => (0, *p),
        FaultAction::SlowDisk { resource, .. } => (1, resource.0 as u64),
        FaultAction::NicBrownout { resource, .. } => (2, resource.0 as u64),
        FaultAction::DelayedCompletion { payload, .. } => (3, *payload),
        FaultAction::AddServer { server } => (4, *server),
        FaultAction::DrainServer { server } => (5, *server),
        FaultAction::BitRot { locus, .. } => (6, *locus),
    }
}

/// True for the healing half of an incident (restart, scale restore,
/// delay clear).
fn is_recovery(a: &FaultAction) -> bool {
    match a {
        FaultAction::TargetRestart(_) => true,
        FaultAction::SlowDisk { scale, .. } | FaultAction::NicBrownout { scale, .. } => {
            *scale >= 1.0
        }
        FaultAction::DelayedCompletion { extra_ns, .. } => *extra_ns == 0,
        // membership changes and silent rot are one-shot incidents with
        // no healing half
        FaultAction::TargetCrash(_)
        | FaultAction::AddServer { .. }
        | FaultAction::DrainServer { .. }
        | FaultAction::BitRot { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::ResourceId;
    use crate::time::SimTime;

    /// A plan with two load-bearing events (crash of 42, slow disk 7)
    /// buried in noise; the "oracle" fails iff both are present.
    fn noisy_plan() -> FaultPlan {
        let mut p = FaultPlan::new();
        p.at(SimTime(1_000), FaultAction::TargetCrash(99));
        p.at(SimTime(2_000), FaultAction::TargetCrash(42));
        p.at(
            SimTime(3_000),
            FaultAction::DelayedCompletion {
                payload: 5,
                extra_ns: 100,
            },
        );
        p.at(
            SimTime(4_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 0.5,
            },
        );
        p.at(
            SimTime(9_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 1.0,
            },
        );
        p.at(SimTime(5_000), FaultAction::TargetRestart(99));
        p
    }

    fn both_present(plan: &FaultPlan) -> bool {
        let has_crash = plan
            .events()
            .iter()
            .any(|e| e.action == FaultAction::TargetCrash(42));
        let has_slow = plan.events().iter().any(|e| {
            matches!(e.action, FaultAction::SlowDisk { resource, scale }
                if resource == ResourceId(7) && scale < 1.0)
        });
        has_crash && has_slow
    }

    #[test]
    fn ddmin_strips_bystander_events() {
        let out = shrink(&noisy_plan(), both_present);
        assert!(out.reproduced);
        assert_eq!(out.plan.len(), 2, "only the two load-bearing events");
        assert!(both_present(&out.plan));
        assert_eq!(out.removed, 4);
        assert!(out.probes >= 2);
    }

    #[test]
    fn shrunk_events_are_a_subset_by_id() {
        let original = noisy_plan();
        let out = shrink(&original, both_present);
        let orig_ids: Vec<u64> = original.events().iter().map(|e| e.id).collect();
        for e in out.plan.events() {
            assert!(orig_ids.contains(&e.id));
            let orig = original.events().iter().find(|o| o.id == e.id).unwrap();
            assert!(e.at <= orig.at, "tightening only moves events earlier");
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink(&noisy_plan(), both_present);
        let b = shrink(&noisy_plan(), both_present);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.probes, b.probes);
        assert_eq!((a.removed, a.tightened), (b.removed, b.tightened));
    }

    #[test]
    fn window_tightening_halves_recovery_gaps() {
        // Oracle: fails iff the slow-disk incident exists at all (any
        // window width), so tightening can pull the restore down to
        // `hit + 1`.
        let mut p = FaultPlan::new();
        p.at(
            SimTime(1_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 0.5,
            },
        );
        p.at(
            SimTime(1_000_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 1.0,
            },
        );
        let out = shrink(&p, |plan| {
            plan.events()
                .iter()
                .any(|e| matches!(e.action, FaultAction::SlowDisk { scale, .. } if scale < 1.0))
        });
        assert!(out.reproduced);
        // ddmin removes the restore entirely (the hit alone still fails).
        assert_eq!(out.plan.len(), 1);
        assert_eq!(out.removed, 1);
    }

    #[test]
    fn tightening_applies_when_pair_must_survive() {
        // Oracle: fails only when BOTH the hit and its restore exist, so
        // ddmin can't drop either and stage 2 must shrink the window.
        let mut p = FaultPlan::new();
        p.at(
            SimTime(1_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 0.5,
            },
        );
        p.at(
            SimTime(1_001_000),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 1.0,
            },
        );
        let out =
            shrink(&p, |plan| {
                let hit = plan.events().iter().any(
                    |e| matches!(e.action, FaultAction::SlowDisk { scale, .. } if scale < 1.0),
                );
                let heal = plan.events().iter().any(
                    |e| matches!(e.action, FaultAction::SlowDisk { scale, .. } if scale >= 1.0),
                );
                hit && heal
            });
        assert!(out.reproduced);
        assert_eq!(out.plan.len(), 2);
        assert_eq!(out.tightened, 1);
        let evs = out.plan.clone().into_events();
        assert_eq!(evs[1].at, SimTime(1_001), "halved down to hit + 1");
    }

    #[test]
    fn non_failing_plan_is_returned_untouched() {
        let p = noisy_plan();
        let out = shrink(&p, |_| false);
        assert!(!out.reproduced);
        assert_eq!(out.plan, p);
        assert_eq!(out.probes, 1);
    }
}
