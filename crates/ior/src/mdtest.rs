//! An mdtest-like metadata benchmark.
//!
//! The paper's conclusion C4 rests on DAOS being "the only option that
//! can provide high performance both for large I/O as well as for
//! metadata and small I/O workloads", and cites the IO500 list — whose
//! metadata component is `mdtest`: concurrent processes creating,
//! stat-ing and removing large numbers of small files.  This module
//! implements that workload over any [`PosixFs`] mount, so the same run
//! drives DFUSE (backed by DAOS's distributed metadata) and Lustre
//! (backed by one MDS).

use cluster::bench::{pin_round_robin, ProcWorkload};
use cluster::payload::Payload;
use cluster::posix::PosixFs;
use simkit::Step;

/// Which mdtest phase a run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdPhase {
    /// `mdtest-easy-write`: create files (plus a small write each).
    Create,
    /// `mdtest-easy-stat`: stat every file.
    Stat,
    /// `mdtest-easy-delete`: unlink every file.
    Remove,
}

/// mdtest configuration.
#[derive(Debug, Clone)]
pub struct MdtestConfig {
    /// Parallel processes.
    pub procs: usize,
    /// Client nodes they are pinned over.
    pub client_nodes: usize,
    /// Files per process and phase.
    pub files_per_proc: usize,
    /// Bytes written into each created file (3901 bytes in IO500's
    /// mdtest-hard; 0 for pure metadata).
    // simlint::dim(bytes)
    pub write_bytes: u64,
}

impl MdtestConfig {
    /// A standard configuration.
    pub fn new(procs: usize, client_nodes: usize, files_per_proc: usize) -> Self {
        MdtestConfig {
            procs,
            client_nodes,
            files_per_proc,
            write_bytes: 3901,
        }
    }
}

/// An mdtest run over a POSIX mount.
pub struct Mdtest {
    cfg: MdtestConfig,
    fs: Box<dyn PosixFs>,
    pins: Vec<usize>,
    phase: MdPhase,
}

impl Mdtest {
    /// Create the run; per-process directories are made during setup.
    pub fn new(cfg: MdtestConfig, fs: Box<dyn PosixFs>) -> Mdtest {
        let pins = pin_round_robin(cfg.procs, cfg.client_nodes);
        Mdtest {
            cfg,
            fs,
            pins,
            phase: MdPhase::Create,
        }
    }

    /// Switch to the next phase (the harness runs Create → Stat → Remove).
    pub fn set_phase(&mut self, phase: MdPhase) {
        self.phase = phase;
    }

    /// The active phase.
    pub fn phase(&self) -> MdPhase {
        self.phase
    }

    fn path(&self, proc: usize, idx: usize) -> String {
        format!("/mdtest/p{proc:04}/f{idx:06}")
    }
}

impl ProcWorkload for Mdtest {
    fn procs(&self) -> usize {
        self.cfg.procs
    }

    fn node_of(&self, proc: usize) -> usize {
        self.pins[proc]
    }

    fn ops_per_proc(&self) -> usize {
        self.cfg.files_per_proc
    }

    fn bytes_per_op(&self) -> f64 {
        match self.phase {
            MdPhase::Create => self.cfg.write_bytes as f64,
            _ => 0.0,
        }
    }

    // simlint::allow(panic-path) — benchmark setup: a failed create/open before measurement is a scenario-configuration error, not degraded-mode state
    fn setup(&mut self, proc: usize) -> Step {
        if self.phase != MdPhase::Create {
            return Step::Noop;
        }
        let node = self.pins[proc];
        let root = if proc == 0 {
            self.fs.mkdir(node, "/mdtest").unwrap_or(Step::Noop)
        } else {
            Step::Noop
        };
        let dir = self
            .fs
            .mkdir(node, &format!("/mdtest/p{proc:04}"))
            .expect("proc dir");
        root.then(dir)
    }

    // simlint::allow(panic-path) — benchmark driver: a failure that survives the retry executor is a scenario-configuration error; aborting loudly beats reporting skewed bandwidth
    fn op(&mut self, proc: usize, idx: usize) -> Step {
        let node = self.pins[proc];
        let path = self.path(proc, idx);
        match self.phase {
            MdPhase::Create => {
                let (f, open) = self.fs.open(node, &path, true).expect("create");
                let write = if self.cfg.write_bytes > 0 {
                    self.fs
                        .write(node, f, 0, Payload::Sized(self.cfg.write_bytes))
                        .expect("write")
                } else {
                    Step::Noop
                };
                let close = self.fs.close(node, f).expect("close");
                Step::span(
                    "mdtest",
                    "create",
                    self.cfg.write_bytes,
                    Step::seq([open, write, close]),
                )
            }
            MdPhase::Stat => Step::span(
                "mdtest",
                "stat",
                0,
                self.fs.stat(node, &path).expect("stat").1,
            ),
            MdPhase::Remove => Step::span(
                "mdtest",
                "remove",
                0,
                self.fs.unlink(node, &path).expect("unlink"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DaosSystem, DataMode};
    use daos_dfs::{Dfs, DfsOpts};
    use daos_dfuse::{DfuseMount, DfuseOpts};
    use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
    use simkit::{run, OpId, Scheduler, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    fn drive(sched: &mut Scheduler, md: &mut Mdtest) -> f64 {
        for p in 0..md.procs() {
            let s = md.setup(p);
            sched.submit(s, OpId(p as u64));
        }
        run(sched, &mut Sink);
        let t0 = sched.now();
        for p in 0..md.procs() {
            for i in 0..md.ops_per_proc() {
                let s = md.op(p, i);
                sched.submit(s, OpId(p as u64));
                run(sched, &mut Sink);
            }
        }
        sched.now().secs_since(t0)
    }

    #[test]
    fn full_cycle_on_dfuse() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let daos = Rc::new(RefCell::new(daos));
        let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let mount = DfuseMount::mount(dfs, &mut sched, DfuseOpts::default());
        let mut md = Mdtest::new(MdtestConfig::new(2, 1, 10), Box::new(mount));
        let t_create = drive(&mut sched, &mut md);
        md.set_phase(MdPhase::Stat);
        let t_stat = drive(&mut sched, &mut md);
        md.set_phase(MdPhase::Remove);
        let t_remove = drive(&mut sched, &mut md);
        assert!(t_create > 0.0 && t_stat > 0.0 && t_remove > 0.0);
        // files are gone afterwards
        assert!(md.fs.stat(0, "/mdtest/p0000/f000000").is_err());
    }

    #[test]
    fn lustre_mds_throttles_creates() {
        // identical workload on two Lustre systems differing only in MDS
        // rate: the slower MDS must slow the create phase
        let run_with = |mds_iops: f64| {
            let mut sched = Scheduler::new();
            let mut spec = ClusterSpec::new(1, 2);
            spec.cal.mds_iops = mds_iops;
            let topo = spec.build(&mut sched);
            let fs = LustreSystem::deploy(
                &topo,
                &mut sched,
                1,
                LustreDataMode::Sized,
                StripeOpts::default(),
            );
            let mut md = Mdtest::new(MdtestConfig::new(8, 2, 30), Box::new(fs));
            drive(&mut sched, &mut md)
        };
        let fast = run_with(200_000.0);
        let slow = run_with(5_000.0);
        assert!(slow > fast * 3.0, "slow MDS {slow:.4}s vs fast {fast:.4}s");
    }
}
