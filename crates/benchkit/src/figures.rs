//! The paper's figures and tables as executable sweep definitions.
//!
//! Each `figN` function reproduces the corresponding figure's data: the
//! same benchmarks, deployment sizes and sweep axes, three repetitions
//! per point, mean ± stddev.  Sweep points run in parallel under rayon
//! (each point is an independent simulated deployment).

use crate::report::REPS;
use crate::scenarios::{run_reps, PointStats, RunSpec, Scenario};
use cluster::microbench;
use cluster::{Calibration, GIB, MIB};
use daos_core::ObjectClass;
use rayon::prelude::*;

/// One rendered data point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Sweep coordinate (processes per node, or server count).
    pub x: f64,
    /// Mean of the plotted metric.
    pub mean: f64,
    /// Standard deviation over repetitions.
    pub std: f64,
}

/// One curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

/// One (sub-)figure: a set of curves with labelled axes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `fig1a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// Which metric a sweep plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Write bandwidth in GiB/s.
    WriteBw,
    /// Read bandwidth in GiB/s.
    ReadBw,
    /// Write KIOPS.
    WriteIops,
    /// Read KIOPS.
    ReadIops,
}

impl Metric {
    fn label(&self) -> &'static str {
        match self {
            Metric::WriteBw => "Write bandwidth [GiB/s]",
            Metric::ReadBw => "Read bandwidth [GiB/s]",
            Metric::WriteIops => "Write rate [KIOPS]",
            Metric::ReadIops => "Read rate [KIOPS]",
        }
    }

    fn extract(&self, p: &PointStats) -> (f64, f64) {
        match self {
            Metric::WriteBw => (p.write_bw.mean / GIB, p.write_bw.std / GIB),
            Metric::ReadBw => (p.read_bw.mean / GIB, p.read_bw.std / GIB),
            Metric::WriteIops => (p.write_iops.mean / 1e3, p.write_iops.std / 1e3),
            Metric::ReadIops => (p.read_iops.mean / 1e3, p.read_iops.std / 1e3),
        }
    }

    fn short(&self) -> &'static str {
        match self {
            Metric::WriteBw | Metric::WriteIops => "Write",
            Metric::ReadBw | Metric::ReadIops => "Read",
        }
    }
}

/// Client-node counts used as curve families in the optimisation plots.
const NODE_SERIES: [usize; 3] = [4, 16, 32];
/// Processes-per-node sweep (the paper sweeps 1..32 on 32-core VMs).
const PPN_SWEEP: [usize; 5] = [1, 4, 8, 16, 32];

/// A client-shape sweep against a fixed deployment: one `PointStats`
/// per (client nodes, ppn) point, computed once and shared by the
/// write- and read-metric figures.
fn client_sweep(
    scen: Scenario,
    servers: usize,
    cal: &Calibration,
    mutate: impl Fn(&mut RunSpec) + Sync,
) -> Vec<(usize, Vec<(usize, PointStats)>)> {
    NODE_SERIES
        .iter()
        .map(|&nodes| {
            let points: Vec<(usize, PointStats)> = PPN_SWEEP
                .par_iter()
                .map(|&ppn| {
                    let mut spec = RunSpec::new(servers, nodes, ppn);
                    mutate(&mut spec);
                    (ppn, run_reps(&spec, scen, cal, REPS))
                })
                .collect();
            (nodes, points)
        })
        .collect()
}

fn sweep_to_figure(
    sweep: &[(usize, Vec<(usize, PointStats)>)],
    id: &str,
    scen: Scenario,
    servers: usize,
    metric: Metric,
) -> Figure {
    let series = sweep
        .iter()
        .map(|(nodes, points)| Series {
            name: format!("{nodes} client nodes"),
            points: points
                .iter()
                .map(|(ppn, stats)| {
                    let (mean, std) = metric.extract(stats);
                    Point {
                        x: *ppn as f64,
                        mean,
                        std,
                    }
                })
                .collect(),
        })
        .collect();
    Figure {
        id: id.to_string(),
        title: format!(
            "{} — {}, {servers} server nodes",
            scen.name(),
            metric.short()
        ),
        x_label: "processes per client node".into(),
        y_label: metric.label().into(),
        series,
    }
}

/// Build the (write, read) figure pair of one optimisation sweep.
fn opt_pair(
    ids: (&str, &str),
    scen: Scenario,
    servers: usize,
    metrics: (Metric, Metric),
    cal: &Calibration,
    mutate: impl Fn(&mut RunSpec) + Sync,
) -> Vec<Figure> {
    let sweep = client_sweep(scen, servers, cal, mutate);
    vec![
        sweep_to_figure(&sweep, ids.0, scen, servers, metrics.0),
        sweep_to_figure(&sweep, ids.1, scen, servers, metrics.1),
    ]
}

/// §III-A hardware table.
pub fn hardware_table() -> Figure {
    let t = microbench::hardware_table();
    let names = [
        "dd write (16 NVMe)",
        "dd read (16 NVMe)",
        "iperf client→server",
        "iperf server→client",
    ];
    Figure {
        id: "hw".into(),
        title: "Raw hardware bandwidth (§III-A)".into(),
        x_label: "-".into(),
        y_label: "bandwidth [GiB/s]".into(),
        series: names
            .iter()
            .zip(t.iter())
            .map(|(n, m)| Series {
                name: n.to_string(),
                points: vec![Point {
                    x: 0.0,
                    mean: m.bandwidth() / GIB,
                    std: 0.0,
                }],
            })
            .collect(),
    }
}

/// Fig. 1: IOR through the four DAOS APIs, 16 servers, 1 MiB transfers.
pub fn fig1(cal: &Calibration) -> Vec<Figure> {
    let apis = [
        (("fig1a", "fig1b"), Scenario::IorDaos),
        (("fig1c", "fig1d"), Scenario::IorDfs),
        (("fig1e", "fig1f"), Scenario::IorDfuse),
        (("fig1g", "fig1h"), Scenario::IorDfuseIl),
    ];
    apis.iter()
        .flat_map(|(ids, scen)| {
            opt_pair(
                *ids,
                *scen,
                16,
                (Metric::WriteBw, Metric::ReadBw),
                cal,
                |_| {},
            )
        })
        .collect()
}

/// Fig. 2: DFUSE vs DFUSE+IL at 1 KiB, plotted as IOPS.
pub fn fig2(cal: &Calibration) -> Vec<Figure> {
    let cases = [
        (("fig2a", "fig2b"), Scenario::IorDfuse),
        (("fig2c", "fig2d"), Scenario::IorDfuseIl),
    ];
    cases
        .iter()
        .flat_map(|(ids, scen)| {
            opt_pair(
                *ids,
                *scen,
                16,
                (Metric::WriteIops, Metric::ReadIops),
                cal,
                |spec| {
                    spec.transfer = 1 << 10;
                    // small ops are cheap: run more of them per process
                    spec.ops_per_proc = (spec.ops_per_proc * 4).min(1024);
                },
            )
        })
        .collect()
}

/// Fig. 3: the application benchmarks against 16 servers.
pub fn fig3(cal: &Calibration) -> Vec<Figure> {
    let cases = [
        (("fig3a", "fig3b"), Scenario::IorHdf5DfuseIl),
        (("fig3c", "fig3d"), Scenario::IorHdf5Daos),
        (("fig3e", "fig3f"), Scenario::FieldIo),
        (("fig3g", "fig3h"), Scenario::FdbDaos),
    ];
    cases
        .iter()
        .flat_map(|(ids, scen)| {
            opt_pair(
                *ids,
                *scen,
                16,
                (Metric::WriteBw, Metric::ReadBw),
                cal,
                |_| {},
            )
        })
        .collect()
}

/// Fig. 4: IOR/libdaos and IOR-HDF5/libdaos against a 4-server pool.
pub fn fig4(cal: &Calibration) -> Vec<Figure> {
    let cases = [
        (("fig4a", "fig4b"), Scenario::IorDaos),
        (("fig4c", "fig4d"), Scenario::IorHdf5Daos),
    ];
    cases
        .iter()
        .flat_map(|(ids, scen)| {
            opt_pair(
                *ids,
                *scen,
                4,
                (Metric::WriteBw, Metric::ReadBw),
                cal,
                |_| {},
            )
        })
        .collect()
}

/// The scenarios plotted in the scalability figure.
pub const FIG5_SCENARIOS: [Scenario; 8] = [
    Scenario::IorDaos,
    Scenario::IorDfs,
    Scenario::IorDfuse,
    Scenario::IorDfuseIl,
    Scenario::IorHdf5DfuseIl,
    Scenario::IorHdf5Daos,
    Scenario::FieldIo,
    Scenario::FdbDaos,
];

/// Fig. 5: write/read scalability over 2–24 server nodes at the optimal
/// client shape (32 nodes × 16 processes).
pub fn fig5(cal: &Calibration) -> Vec<Figure> {
    let servers = [2usize, 4, 8, 16, 24];
    let sweeps: Vec<(Scenario, Vec<(usize, PointStats)>)> = FIG5_SCENARIOS
        .iter()
        .map(|&scen| {
            let points: Vec<(usize, PointStats)> = servers
                .par_iter()
                .map(|&srv| {
                    let spec = RunSpec::new(srv, 32, 16);
                    (srv, run_reps(&spec, scen, cal, REPS))
                })
                .collect();
            (scen, points)
        })
        .collect();
    [Metric::WriteBw, Metric::ReadBw]
        .iter()
        .enumerate()
        .map(|(i, &metric)| {
            let series: Vec<Series> = sweeps
                .iter()
                .map(|(scen, points)| Series {
                    name: scen.name().to_string(),
                    points: points
                        .iter()
                        .map(|(srv, stats)| {
                            let (mean, std) = metric.extract(stats);
                            Point {
                                x: *srv as f64,
                                mean,
                                std,
                            }
                        })
                        .collect(),
                })
                .collect();
            Figure {
                id: format!("fig5{}", ["a", "b"][i]),
                title: format!("{} scalability over DAOS server nodes", metric.short()),
                x_label: "DAOS server nodes".into(),
                y_label: metric.label().into(),
                series,
            }
        })
        .collect()
}

/// Fig. 6: redundancy — EC 2+1 Arrays/files, RP_2 Key-Values/dirs,
/// 16 servers.  With `rf2` the data class is RP_2 as well (the §III-D
/// replication paragraph).
pub fn fig6(cal: &Calibration, rf2: bool) -> Vec<Figure> {
    let (data_class, label) = if rf2 {
        (ObjectClass::RP_2, "RF2")
    } else {
        (ObjectClass::EC_2P1, "EC 2+1")
    };
    let cases = [
        (("fig6a", "fig6b"), Scenario::IorDaos),
        (("fig6c", "fig6d"), Scenario::FdbDaos),
    ];
    cases
        .iter()
        .flat_map(|(ids, scen)| {
            opt_pair(
                *ids,
                *scen,
                16,
                (Metric::WriteBw, Metric::ReadBw),
                cal,
                |spec| {
                    spec.data_class = data_class;
                    spec.meta_class = ObjectClass::RP_2;
                },
            )
        })
        .map(|mut f| {
            f.title = format!("{} ({label})", f.title);
            f
        })
        .collect()
}

/// Fig. 7: fdb-hammer POSIX on the 16+1-node Lustre system.
pub fn fig7(cal: &Calibration) -> Vec<Figure> {
    opt_pair(
        ("fig7a", "fig7b"),
        Scenario::FdbLustre,
        16,
        (Metric::WriteBw, Metric::ReadBw),
        cal,
        |_| {},
    )
}

/// Fig. 8: fdb-hammer on librados against the 16+1-node Ceph system.
pub fn fig8(cal: &Calibration) -> Vec<Figure> {
    opt_pair(
        ("fig8a", "fig8b"),
        Scenario::FdbCeph,
        16,
        (Metric::WriteBw, Metric::ReadBw),
        cal,
        |_| {},
    )
}

/// Fig. 9: fdb-hammer at 32 client nodes against DAOS, Lustre and Ceph.
pub fn fig9(cal: &Calibration) -> Vec<Figure> {
    let stores = [Scenario::FdbDaos, Scenario::FdbLustre, Scenario::FdbCeph];
    let sweeps: Vec<(Scenario, Vec<(usize, PointStats)>)> = stores
        .iter()
        .map(|&scen| {
            let points: Vec<(usize, PointStats)> = PPN_SWEEP
                .par_iter()
                .map(|&ppn| {
                    let spec = RunSpec::new(16, 32, ppn);
                    (ppn, run_reps(&spec, scen, cal, REPS))
                })
                .collect();
            (scen, points)
        })
        .collect();
    [Metric::WriteBw, Metric::ReadBw]
        .iter()
        .enumerate()
        .map(|(i, &metric)| {
            let series: Vec<Series> = sweeps
                .iter()
                .map(|(scen, points)| Series {
                    name: scen.name().to_string(),
                    points: points
                        .iter()
                        .map(|(ppn, stats)| {
                            let (mean, std) = metric.extract(stats);
                            Point {
                                x: *ppn as f64,
                                mean,
                                std,
                            }
                        })
                        .collect(),
                })
                .collect();
            Figure {
                id: format!("fig9{}", ["a", "b"][i]),
                title: format!(
                    "fdb-hammer at 32 client nodes, DAOS vs Lustre vs Ceph — {}",
                    metric.short()
                ),
                x_label: "processes per client node".into(),
                y_label: metric.label().into(),
                series,
            }
        })
        .collect()
}

/// §III-E text result: IOR POSIX on Lustre approaches the hardware
/// optimum for file-per-process I/O.
pub fn ior_lustre_table(cal: &Calibration) -> Figure {
    sweep_table(
        "ior-lustre",
        "IOR POSIX on Lustre (§III-E)",
        Scenario::IorLustre,
        cal,
    )
}

/// §III-F text result: IOR on librados only reaches about half of the
/// DAOS/Lustre bandwidth.
pub fn ior_ceph_table(cal: &Calibration) -> Figure {
    sweep_table(
        "ior-ceph",
        "IOR on librados against Ceph (§III-F)",
        Scenario::IorCeph,
        cal,
    )
}

fn sweep_table(id: &str, title: &str, scen: Scenario, cal: &Calibration) -> Figure {
    let points: Vec<(usize, PointStats)> = PPN_SWEEP
        .par_iter()
        .map(|&ppn| {
            let spec = RunSpec::new(16, 32, ppn);
            (ppn, run_reps(&spec, scen, cal, REPS))
        })
        .collect();
    let write = Series {
        name: "write".into(),
        points: points
            .iter()
            .map(|(ppn, p)| Point {
                x: *ppn as f64,
                mean: p.write_bw.mean / GIB,
                std: p.write_bw.std / GIB,
            })
            .collect(),
    };
    let read = Series {
        name: "read".into(),
        points: points
            .iter()
            .map(|(ppn, p)| Point {
                x: *ppn as f64,
                mean: p.read_bw.mean / GIB,
                std: p.read_bw.std / GIB,
            })
            .collect(),
    };
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "processes per client node (32 client nodes)".into(),
        y_label: "bandwidth [GiB/s]".into(),
        series: vec![write, read],
    }
}

/// Peak value across a figure's series (used by shape assertions and the
/// experiment log).
pub fn peak(fig: &Figure) -> f64 {
    fig.series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.mean))
        .fold(0.0, f64::max)
}

/// The 1 MiB transfer constant used throughout the evaluation.
pub const TRANSFER_1MIB: f64 = MIB;

/// Ablations of the design choices DESIGN.md calls out.  Each figure
/// compares variants of one knob on the same workload: series =
/// variant, x = 0 for write, x = 1 for read (bandwidth in GiB/s, rate
/// in KIOPS for the FUSE-thread ablation).
pub fn ablations(cal: &Calibration) -> Vec<Figure> {
    fn variant_fig(
        id: &str,
        title: &str,
        y_label: &str,
        variants: Vec<(String, PointStats)>,
        iops: bool,
    ) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: "0 = write, 1 = read".into(),
            y_label: y_label.into(),
            series: variants
                .into_iter()
                .map(|(name, p)| Series {
                    name,
                    points: if iops {
                        vec![
                            Point {
                                x: 0.0,
                                mean: p.write_iops.mean / 1e3,
                                std: p.write_iops.std / 1e3,
                            },
                            Point {
                                x: 1.0,
                                mean: p.read_iops.mean / 1e3,
                                std: p.read_iops.std / 1e3,
                            },
                        ]
                    } else {
                        vec![
                            Point {
                                x: 0.0,
                                mean: p.write_bw.mean / GIB,
                                std: p.write_bw.std / GIB,
                            },
                            Point {
                                x: 1.0,
                                mean: p.read_bw.mean / GIB,
                                std: p.read_bw.std / GIB,
                            },
                        ]
                    },
                })
                .collect(),
        }
    }

    let mut figs = Vec::new();

    // A1: DFUSE thread count at 1 KiB I/O (the dfuse mount option the
    // paper sets to 24)
    let threads: Vec<(String, PointStats)> = [2usize, 8, 24, 48]
        .par_iter()
        .map(|&t| {
            let mut spec = RunSpec::new(8, 8, 16);
            spec.transfer = 1 << 10;
            spec.ops_per_proc = 256;
            spec.fuse_threads = Some(t);
            (
                format!("{t} FUSE threads"),
                run_reps(&spec, Scenario::IorDfuse, cal, REPS),
            )
        })
        .collect();
    figs.push(variant_fig(
        "abl-fuse-threads",
        "Ablation: DFUSE thread count, IOR 1 KiB",
        "rate [KIOPS]",
        threads,
        true,
    ));

    // A2: DFUSE client caching (disabled in every paper run)
    let caching: Vec<(String, PointStats)> = [false, true]
        .par_iter()
        .map(|&on| {
            let mut spec = RunSpec::new(8, 8, 16);
            spec.ops_per_proc = 48;
            spec.dfuse_caching = on;
            (
                if on {
                    "caching on".into()
                } else {
                    "caching off".into()
                },
                run_reps(&spec, Scenario::IorDfuse, cal, REPS),
            )
        })
        .collect();
    figs.push(variant_fig(
        "abl-dfuse-caching",
        "Ablation: DFUSE client caching, IOR 1 MiB (read re-hits the writer's cache)",
        "bandwidth [GiB/s]",
        caching,
        false,
    ));

    // A3: object class S1 vs SX for IOR Arrays (the paper found SX best)
    let classes: Vec<(String, PointStats)> =
        [ObjectClass::S1, ObjectClass::Sharded(4), ObjectClass::SX]
            .par_iter()
            .map(|&c| {
                let mut spec = RunSpec::new(8, 8, 16);
                spec.ops_per_proc = 48;
                spec.data_class = c;
                (
                    format!("{c}"),
                    run_reps(&spec, Scenario::IorDaos, cal, REPS),
                )
            })
            .collect();
    figs.push(variant_fig(
        "abl-object-class",
        "Ablation: Array object class, IOR on libdaos",
        "bandwidth [GiB/s]",
        classes,
        false,
    ));

    // A4: Ceph placement-group count (the paper tuned to 1024)
    let pgs: Vec<(String, PointStats)> = [32usize, 128, 1024, 4096]
        .par_iter()
        .map(|&pg| {
            let mut spec = RunSpec::new(8, 8, 16);
            spec.ops_per_proc = 48;
            spec.pg_num = pg;
            (
                format!("{pg} PGs"),
                run_reps(&spec, Scenario::FdbCeph, cal, REPS),
            )
        })
        .collect();
    figs.push(variant_fig(
        "abl-ceph-pgs",
        "Ablation: Ceph placement groups, fdb-hammer on librados",
        "bandwidth [GiB/s]",
        pgs,
        false,
    ));

    // A5: redundancy ladder none / EC 2+1 / RF2 on one workload
    let ladder: Vec<(String, PointStats)> = [
        ("none (SX)", ObjectClass::SX),
        ("EC_2P1", ObjectClass::EC_2P1),
        ("RP_2", ObjectClass::RP_2),
    ]
    .par_iter()
    .map(|(name, c)| {
        let mut spec = RunSpec::new(8, 8, 16);
        spec.ops_per_proc = 48;
        spec.data_class = *c;
        spec.meta_class = ObjectClass::RP_2;
        (
            name.to_string(),
            run_reps(&spec, Scenario::IorDaos, cal, REPS),
        )
    })
    .collect();
    figs.push(variant_fig(
        "abl-redundancy",
        "Ablation: redundancy ladder, IOR on libdaos",
        "bandwidth [GiB/s]",
        ladder,
        false,
    ));

    // A6: client queue depth — what the libdaos event-queue API buys a
    // single writer process (the paper's runs are synchronous, QD 1)
    let qds: Vec<(String, PointStats)> = [1usize, 2, 4, 16]
        .par_iter()
        .map(|&qd| {
            let mut spec = RunSpec::new(8, 2, 2);
            spec.ops_per_proc = 96;
            spec.queue_depth = qd;
            (
                format!("QD {qd}"),
                run_reps(&spec, Scenario::IorDaos, cal, REPS),
            )
        })
        .collect();
    figs.push(variant_fig(
        "abl-queue-depth",
        "Ablation: client queue depth, 4 IOR processes on libdaos",
        "bandwidth [GiB/s]",
        qds,
        false,
    ));

    // A7: Field I/O's per-read size check (the Field-I/O-vs-fdb-hammer
    // difference the paper discusses)
    let checks: Vec<(String, PointStats)> = [true, false]
        .par_iter()
        .map(|&on| {
            let mut spec = RunSpec::new(8, 8, 16);
            spec.ops_per_proc = 48;
            spec.fieldio_size_check = on;
            (
                if on {
                    "size check (Field I/O)".into()
                } else {
                    "no check (fdb-style)".into()
                },
                run_reps(&spec, Scenario::FieldIo, cal, REPS),
            )
        })
        .collect();
    figs.push(variant_fig(
        "abl-size-check",
        "Ablation: per-read size check in Field I/O",
        "bandwidth [GiB/s]",
        checks,
        false,
    ));

    figs
}

/// C4 metadata claim: mdtest (the IO500 metadata workload the paper
/// cites) on DFUSE-over-DAOS vs Lustre, same hardware.  Series =
/// store, x = phase (0 create, 1 stat, 2 remove), y = KIOPS.
pub fn mdtest_table(cal: &Calibration) -> Figure {
    use crate::scenarios::{run_mdtest, MdStore};
    let mut spec = RunSpec::new(16, 16, 16);
    spec.ops_per_proc = 48;
    let series: Vec<Series> = [
        (MdStore::Dfuse, "DFUSE (DAOS)"),
        (MdStore::Lustre, "Lustre"),
    ]
    .par_iter()
    .map(|&(store, name)| {
        let phases = run_mdtest(&spec, store, cal);
        Series {
            name: name.to_string(),
            points: phases
                .iter()
                .enumerate()
                .map(|(i, p)| Point {
                    x: i as f64,
                    mean: p.iops() / 1e3,
                    std: 0.0,
                })
                .collect(),
        }
    })
    .collect();
    Figure {
        id: "mdtest".into(),
        title: "mdtest metadata rates — DAOS vs Lustre (conclusion C4)".into(),
        x_label: "phase: 0 = create, 1 = stat, 2 = remove".into(),
        y_label: "rate [KIOPS]".into(),
        series,
    }
}
