//! Failure-injection edge cases: what happens when redundancy is
//! exhausted — every replica of an RP_2 group down, two of three
//! EC_2P1 cells lost, and a second crash landing in the middle of an
//! ongoing rebuild.  Also pins the determinism of an entire
//! crash → degraded read → rebuild sequence via the scheduler digest.

use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosError, DaosSystem, DataMode, ObjectClass, TargetId};
use simkit::{run, OpId, Scheduler, SimTime, SplitMix64, Step, World};

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) -> f64 {
    let t0 = sched.now();
    sched.submit(step, OpId(0));
    let mut w = Done(SimTime::ZERO);
    run(sched, &mut w);
    w.0.secs_since(t0)
}

fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn fixture(servers: usize) -> (Scheduler, DaosSystem, daos_core::ContainerId) {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(servers, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, servers, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Done(SimTime::ZERO));
    (sched, daos, cid)
}

/// Crash every target of one server — the engine-failure model the
/// faulted benchmark scenarios use.
fn crash_server(daos: &mut DaosSystem, targets_per_server: usize, server: u16) {
    for t in 0..targets_per_server as u16 {
        daos.crash_target(TargetId { server, target: t });
    }
}

#[test]
fn all_rp2_replicas_down_is_reported_as_loss() {
    // Two servers: every RP_2 group has one replica on each, so losing
    // both servers strands every group with no surviving copy.
    let (mut sched, mut daos, cid) = fixture(2);
    let tps = daos.pool_query().targets_total / 2;
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 18)
        .unwrap();
    exec(&mut sched, s);
    let data = rand_bytes(3, 4 << 20);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap(),
    );

    crash_server(&mut daos, tps, 0);
    crash_server(&mut daos, tps, 1);
    let (report, step) = daos.rebuild();
    let _ = exec(&mut sched, step);
    assert!(report.objects_scanned >= 1);
    assert!(
        report.shards_lost > 0,
        "both replicas down must be reported as data loss: {report:?}"
    );
    assert_eq!(
        report.shards_rebuilt, 0,
        "nothing can be rebuilt with no survivors: {report:?}"
    );

    // the loss is terminal: the read must fail, not hang or fabricate
    let err = daos
        .array_read(0, cid, oid, 0, data.len() as u64)
        .expect_err("read of fully lost data must fail");
    assert!(
        matches!(err, DaosError::Unavailable | DaosError::TargetDown),
        "expected a hard unavailability error, got {err:?}"
    );
}

#[test]
fn ec2p1_with_two_cells_lost_cannot_reconstruct() {
    // Three servers: each EC 2+1 group spans all three, so losing any
    // two servers takes two of the three cells — beyond the single
    // parity's ability to reconstruct.
    let (mut sched, mut daos, cid) = fixture(3);
    let tps = daos.pool_query().targets_total / 3;
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 18)
        .unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Bytes(rand_bytes(4, 4 << 20)))
            .unwrap(),
    );

    crash_server(&mut daos, tps, 0);
    crash_server(&mut daos, tps, 1);
    let (report, step) = daos.rebuild();
    let _ = exec(&mut sched, step);
    assert!(
        report.shards_lost > 0,
        "EC 2+1 minus two cells is unrecoverable: {report:?}"
    );

    let err = daos
        .array_read(0, cid, oid, 0, 4 << 20)
        .expect_err("read past the erasure-code tolerance must fail");
    assert!(
        matches!(err, DaosError::Unavailable | DaosError::TargetDown),
        "expected a hard unavailability error, got {err:?}"
    );
}

#[test]
fn crash_mid_rebuild_is_recovered_by_second_pass() {
    // Four servers, RP_2 data.  Server 0 dies; rebuild re-protects the
    // layouts immediately and returns the data-movement step.  Before
    // that movement completes, server 1 dies too.  A second rebuild
    // pass must recover whatever the first pass re-homed — no group
    // ever had both replicas down at once, so nothing may be lost.
    let (mut sched, mut daos, cid) = fixture(4);
    let tps = daos.pool_query().targets_total / 4;
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 18)
        .unwrap();
    exec(&mut sched, s);
    let data = rand_bytes(5, 8 << 20);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap(),
    );

    crash_server(&mut daos, tps, 0);
    let (first, movement) = daos.rebuild();
    assert_eq!(first.shards_lost, 0, "{first:?}");
    // the movement is still in flight when the second server dies
    sched.submit(movement, OpId(0));
    crash_server(&mut daos, tps, 1);
    let (second, movement2) = daos.rebuild();
    assert_eq!(
        second.shards_lost, 0,
        "second crash mid-rebuild must not lose re-protected data: {second:?}"
    );
    sched.submit(movement2, OpId(1));
    run(&mut sched, &mut Done(SimTime::ZERO));

    let (got, s) = daos.array_read(0, cid, oid, 0, data.len() as u64).unwrap();
    exec(&mut sched, s);
    assert_eq!(
        got.bytes().unwrap(),
        &data[..],
        "data intact after a crash during rebuild"
    );
}

#[test]
fn crash_rebuild_sequence_digest_is_stable() {
    // The whole injected-fault sequence — write, engine crash, degraded
    // read, rebuild, healthy read — must fold to the same scheduler
    // digest on every run, or the faulted benchmark scenarios cannot be
    // replayed.
    fn one_run() -> (u64, Vec<u8>) {
        let (mut sched, mut daos, cid) = fixture(4);
        let tps = daos.pool_query().targets_total / 4;
        let (oid, s) = daos
            .array_create(0, cid, ObjectClass::EC_2P1, 1 << 18)
            .unwrap();
        exec(&mut sched, s);
        let data = rand_bytes(6, 4 << 20);
        exec(
            &mut sched,
            daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
                .unwrap(),
        );
        crash_server(&mut daos, tps, 2);
        // each crashed target surfaces `TargetDown` once on first touch;
        // a bounded retry loop rides through detection until the
        // degraded (reconstructing) read goes through
        let mut detected = 0usize;
        let got = loop {
            match daos.array_read(0, cid, oid, 0, data.len() as u64) {
                Ok((got, s)) => {
                    exec(&mut sched, s);
                    break got;
                }
                Err(DaosError::TargetDown) => {
                    detected += 1;
                    assert!(detected <= tps, "more detections than crashed targets");
                }
                Err(e) => panic!("unexpected degraded-read error: {e:?}"),
            }
        };
        assert!(detected >= 1, "crash must be detected on the data path");
        assert_eq!(got.bytes().unwrap(), &data[..]);
        let (report, step) = daos.rebuild();
        assert_eq!(report.shards_lost, 0, "{report:?}");
        exec(&mut sched, step);
        let (got, s) = daos.array_read(0, cid, oid, 0, data.len() as u64).unwrap();
        exec(&mut sched, s);
        (sched.digest(), got.bytes().unwrap().to_vec())
    }
    let (d1, b1) = one_run();
    let (d2, b2) = one_run();
    assert_eq!(d1, d2, "fault sequence digest must replay bit-identically");
    assert_eq!(b1, b2);
}
