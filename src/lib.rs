//! # daos-io-sim — reproduction of *Exploring DAOS Interfaces and
//! Performance* (SC 2024)
//!
//! This facade crate re-exports the whole suite:
//!
//! * [`simkit`] — discrete-event, flow-level cluster simulator;
//! * [`cluster`] — the paper's GCP NVMe test system as hardware models;
//! * [`daos_core`] — the DAOS-like object store (pools, containers,
//!   Key-Values, Arrays, object classes, replication, erasure coding);
//! * [`daos_dfs`] / [`daos_dfuse`] — the POSIX interfaces (libdfs, DFUSE
//!   and the interception library);
//! * [`lustre_sim`] / [`ceph_sim`] — the baseline storage systems;
//! * [`hdf5_lite`], [`fdb_sim`], [`ior_bench`], [`field_io`] — the
//!   benchmark applications from the paper;
//! * [`benchkit`] — sweeps, statistics and figure regeneration.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use benchkit;
pub use ceph_sim;
pub use cluster;
pub use daos_core;
pub use daos_dfs;
pub use daos_dfuse;
pub use fdb_sim;
pub use field_io;
pub use hdf5_lite;
pub use ior_bench;
pub use lustre_sim;
pub use simkit;
