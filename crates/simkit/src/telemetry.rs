//! Deterministic, digest-neutral telemetry: interned-name counters and
//! gauges sampled into fixed sim-time windows, plus an SLO rule engine.
//!
//! The paper explains every plateau by pointing at the saturated
//! resource; the whole-run means in [`crate::monitor`] answer *which*
//! resource but not *when*.  This module adds the time dimension: the
//! engine (and the storage layers above it) publish counters (monotonic
//! event counts: op completions, fair-share re-solves, retries, fault
//! activations) and gauges (instantaneous levels: in-flight flows,
//! pending timers, queue depths) into a [`Telemetry`] registry that
//! buckets every update into fixed `window_ns` windows of *simulated*
//! time.  Derived rates are computed at export time with integer
//! arithmetic only, so two identical runs export byte-identical
//! artifacts.
//!
//! Determinism contract (mirrors [`crate::span::SpanLog`]):
//!
//! * **Off by default.**  A disabled registry costs one branch per hook
//!   and allocates nothing.
//! * **Read-only.**  Telemetry observes the schedule; nothing it records
//!   feeds back into event times, flow rates, or the replay digest.
//!   Enabling it must leave every `(time, op)` completion digest
//!   byte-identical to an untelemetered run.
//! * **Replayable.**  Updates are keyed by sim time, which is itself
//!   deterministic, so two runs of the same workload produce identical
//!   window series and identical exports.
//!
//! The SLO half evaluates declarative rules — latency-quantile
//! thresholds over span histograms, utilisation burn windows over the
//! monitor's windowed series, counter ceilings over telemetry totals —
//! after the run, in sim time, producing per-rule [`SloVerdict`]s that
//! the benchmark harness folds into its run reports and CI gates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::time::SimTime;
use crate::units::NS_PER_SEC_INT;

/// Identifier of a registered metric (dense, registration-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(pub u32);

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count; windows hold per-window deltas.
    Counter,
    /// Instantaneous level; windows hold the per-window maximum.
    Gauge,
}

#[derive(Debug)]
struct Metric {
    name: String,
    kind: MetricKind,
    /// Counters: running total.  Gauges: current level.
    value: u64,
    /// Per-window samples: counter deltas or gauge maxima.  Rows grow
    /// lazily as sim time advances; gauge gaps are filled with the level
    /// carried across them, so the series is exact, not event-sampled.
    windows: Vec<u64>,
}

/// Read-only view of one metric for exporters.
#[derive(Debug, Clone, Copy)]
pub struct MetricView<'a> {
    /// Interned metric name.
    pub name: &'a str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Counter total / final gauge level.
    pub total: u64,
    /// Per-window series (see [`MetricKind`] for the sample meaning).
    pub windows: &'a [u64],
}

/// The telemetry registry: interned counters and gauges bucketed into
/// fixed sim-time windows.  Off by default; see the module docs for the
/// determinism contract.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    /// Window width in ns (0 while disabled).
    // simlint::dim(ns)
    window_ns: u64,
    metrics: Vec<Metric>,
    names: BTreeMap<String, MetricId>,
    /// Fast path for span-derived counters: `(layer, op)` pairs are
    /// `&'static str`s, so the steady-state lookup never builds a name.
    span_keys: BTreeMap<(&'static str, &'static str), MetricId>,
    /// Per-resource in-flight flow gauges, indexed by resource id.
    res_gauges: Vec<Option<MetricId>>,
}

impl Telemetry {
    /// A registry that records nothing (the default; one branch of
    /// overhead per hook).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A recording registry sampling into `window_ns`-wide windows.
    // simlint::dim(window_ns: ns)
    pub fn enabled(window_ns: u64) -> Telemetry {
        assert!(window_ns > 0, "telemetry window width must be positive");
        Telemetry {
            enabled: true,
            window_ns,
            ..Telemetry::default()
        }
    }

    /// Whether sampling is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Window width in nanoseconds (0 while disabled).
    #[inline]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Intern `name` as a counter and return its id.  Re-registering an
    /// existing name returns the existing id (the kind must match).
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.intern(name, MetricKind::Counter)
    }

    /// Intern `name` as a gauge and return its id.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.intern(name, MetricKind::Gauge)
    }

    // simlint::allow(hot-alloc) — metric interning: allocates once per distinct name, then steady-state updates hit the id path
    fn intern(&mut self, name: &str, kind: MetricKind) -> MetricId {
        if let Some(&id) = self.names.get(name) {
            debug_assert_eq!(self.metrics[id.0 as usize].kind, kind);
            return id;
        }
        let id = MetricId(self.metrics.len() as u32);
        self.metrics.push(Metric {
            name: name.to_string(),
            kind,
            value: 0,
            windows: Vec::new(),
        });
        self.names.insert(name.to_string(), id);
        id
    }

    #[inline]
    fn window_index(&self, at: SimTime) -> usize {
        (at.as_nanos() / self.window_ns) as usize
    }

    /// Add `delta` to counter `id` at sim time `at`.
    // simlint::allow(hot-alloc) — lazy window-row growth: one resize per newly-entered window, then in-window updates never allocate
    pub fn counter_add(&mut self, id: MetricId, at: SimTime, delta: u64) {
        if !self.enabled {
            return;
        }
        let w = self.window_index(at);
        let m = &mut self.metrics[id.0 as usize];
        debug_assert_eq!(m.kind, MetricKind::Counter);
        if m.windows.len() <= w {
            m.windows.resize(w + 1, 0);
        }
        m.windows[w] += delta;
        m.value += delta;
    }

    /// Set gauge `id` to `value` at sim time `at`.  Windows crossed
    /// since the previous update are filled with the carried level, so
    /// the per-window maxima are exact.
    // simlint::allow(hot-alloc) — lazy window-row growth: one resize per newly-entered window, then in-window updates never allocate
    pub fn gauge_set(&mut self, id: MetricId, at: SimTime, value: u64) {
        if !self.enabled {
            return;
        }
        let w = self.window_index(at);
        let m = &mut self.metrics[id.0 as usize];
        debug_assert_eq!(m.kind, MetricKind::Gauge);
        if m.windows.len() <= w {
            // The level held from the last sample up to this window.
            let carry = m.value;
            m.windows.resize(w + 1, carry);
        }
        m.value = value;
        m.windows[w] = m.windows[w].max(value);
    }

    /// Increment gauge `id` by one.
    #[inline]
    pub fn gauge_incr(&mut self, id: MetricId, at: SimTime) {
        if !self.enabled {
            return;
        }
        let v = self.metrics[id.0 as usize].value + 1;
        self.gauge_set(id, at, v);
    }

    /// Decrement gauge `id` by one (saturating).
    #[inline]
    pub fn gauge_decr(&mut self, id: MetricId, at: SimTime) {
        if !self.enabled {
            return;
        }
        let v = self.metrics[id.0 as usize].value.saturating_sub(1);
        self.gauge_set(id, at, v);
    }

    /// Count one span open for `(layer, op)` — the engine calls this on
    /// every `Step::Span` it interprets, whether or not span *recording*
    /// is on, which is how retry/backoff, rebuild and migration-wave
    /// activity becomes a time series without the storage layers holding
    /// a scheduler reference.
    // simlint::allow(hot-alloc) — interning per distinct (layer, op) pair only; the steady-state path is a BTreeMap hit on two static pointers
    pub fn span_open(&mut self, at: SimTime, layer: &'static str, op: &'static str) {
        if !self.enabled {
            return;
        }
        let id = match self.span_keys.get(&(layer, op)) {
            Some(&id) => id,
            None => {
                let id = self.intern(&format!("span.{layer}.{op}"), MetricKind::Counter);
                self.span_keys.insert((layer, op), id);
                id
            }
        };
        self.counter_add(id, at, 1);
    }

    /// Per-resource in-flight flow gauge, interned on first use as
    /// `res.{name}.flows`.
    // simlint::allow(hot-alloc) — one gauge registration per resource id, then steady-state lookups index a Vec
    pub fn resource_gauge(&mut self, index: usize, name: &str) -> MetricId {
        if self.res_gauges.len() <= index {
            self.res_gauges.resize(index + 1, None);
        }
        match self.res_gauges[index] {
            Some(id) => id,
            None => {
                let id = self.intern(&format!("res.{name}.flows"), MetricKind::Gauge);
                self.res_gauges[index] = Some(id);
                id
            }
        }
    }

    /// Counter total (or current gauge level) of `name`; 0 if never
    /// registered.
    pub fn total(&self, name: &str) -> u64 {
        self.names
            .get(name)
            .map(|&id| self.metrics[id.0 as usize].value)
            .unwrap_or(0)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Widest window row across all metrics — the export length every
    /// row is padded to (counters with 0, gauges with the carried level).
    pub fn num_windows(&self) -> usize {
        self.metrics
            .iter()
            .map(|m| m.windows.len())
            .max()
            .unwrap_or(0)
    }

    /// Read-only views of every metric, in registration order.
    // simlint::amortized — post-run export, called once per report
    pub fn views(&self) -> Vec<MetricView<'_>> {
        self.metrics
            .iter()
            .map(|m| MetricView {
                name: &m.name,
                kind: m.kind,
                total: m.value,
                windows: &m.windows,
            })
            .collect()
    }

    /// The value metric `m` reports for window `w`, padding past the end
    /// of its row: counters report 0 (nothing happened), gauges report
    /// the carried level.
    fn window_value(m: &Metric, w: usize) -> u64 {
        match m.windows.get(w) {
            Some(&v) => v,
            None => match m.kind {
                MetricKind::Counter => 0,
                MetricKind::Gauge => m.value,
            },
        }
    }

    /// Derived per-second rate for a counter window delta, in integer
    /// arithmetic (exact for every representable input, so exports stay
    /// byte-stable).
    fn window_rate(&self, delta: u64) -> u64 {
        ((delta as u128 * NS_PER_SEC_INT as u128) / self.window_ns as u128) as u64
    }

    /// Perfetto counter-track events (`ph: "C"`) for every metric and
    /// window, comma-joined without a surrounding array — ready to merge
    /// into a Chrome `traceEvents` stream (see
    /// [`crate::metrics::chrome_trace_json_with_counters`]).  Counters
    /// emit both the per-window delta and the derived per-second rate as
    /// sub-tracks; gauges emit the per-window maximum.  Deterministic:
    /// metrics in registration order, windows in time order, integer
    /// formatting throughout.
    // simlint::allow(hot-alloc) — post-run export: runs once per run after the clock stops
    pub fn counter_events_json(&self) -> String {
        let mut out = String::new();
        if !self.enabled || self.metrics.is_empty() {
            return out;
        }
        let n = self.num_windows();
        let mut first = true;
        for m in &self.metrics {
            for w in 0..n {
                let v = Self::window_value(m, w);
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = crate::metrics::micros(w as u64 * self.window_ns);
                match m.kind {
                    MetricKind::Counter => {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                             \"args\":{{\"value\":{v},\"rate\":{}}}}}",
                            m.name,
                            self.window_rate(v),
                        );
                    }
                    MetricKind::Gauge => {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                             \"args\":{{\"value\":{v}}}}}",
                            m.name,
                        );
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// SLO rules
// ---------------------------------------------------------------------------

/// What an SLO rule checks.  Name fields support `*` (match anything)
/// and trailing-`*` prefix patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloKind {
    /// The `quantile_permille`-quantile latency of every matching
    /// `(layer, op)` histogram must stay at or below `max_ns`.
    LatencyQuantile {
        /// Layer pattern (`"libdaos"`, `"*"`).
        layer: String,
        /// Op pattern within the layer.
        op: String,
        /// Quantile in permille (999 = p99.9).
        quantile_permille: u32,
        /// Inclusive latency ceiling in nanoseconds.
        // simlint::dim(ns)
        max_ns: u64,
    },
    /// No matching resource may sustain utilisation at or above
    /// `threshold_permille` for more than `max_windows` consecutive
    /// windows (a burn-rate budget over the monitor's windowed series).
    UtilisationBurn {
        /// Resource-name pattern.
        resource: String,
        /// Utilisation threshold in permille of capacity (950 = 95%).
        threshold_permille: u32,
        /// Longest tolerated consecutive-window burn.
        max_windows: u64,
    },
    /// The summed totals of every matching telemetry counter must stay
    /// at or below `max_total`.
    CounterCeiling {
        /// Metric-name pattern (`"daos.retry.*"`).
        metric: String,
        /// Inclusive ceiling on the summed totals.
        max_total: u64,
    },
}

/// A named SLO rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloRule {
    /// Stable rule name, used in verdicts, reports and CI baselines.
    pub name: String,
    /// The check.
    pub kind: SloKind,
}

impl SloRule {
    /// Latency-quantile rule: the `quantile_permille` latency of every
    /// matching `(layer, op)` must stay at or below `max_ns`.
    // simlint::dim(max_ns: ns)
    pub fn latency(
        name: &str,
        layer: &str,
        op: &str,
        quantile_permille: u32,
        max_ns: u64,
    ) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::LatencyQuantile {
                layer: layer.to_string(),
                op: op.to_string(),
                quantile_permille,
                max_ns,
            },
        }
    }

    /// Utilisation burn rule over the monitor's windowed series.
    pub fn utilisation_burn(
        name: &str,
        resource: &str,
        threshold_permille: u32,
        max_windows: u64,
    ) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::UtilisationBurn {
                resource: resource.to_string(),
                threshold_permille,
                max_windows,
            },
        }
    }

    /// Counter-ceiling rule over telemetry totals.
    pub fn counter_ceiling(name: &str, metric: &str, max_total: u64) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::CounterCeiling {
                metric: metric.to_string(),
                max_total,
            },
        }
    }
}

/// Outcome of one rule evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloVerdict {
    /// The rule's name.
    pub rule: String,
    /// Whether the observation stayed within the limit.
    pub pass: bool,
    /// Worst observed value (ns, consecutive windows, or counter total,
    /// depending on the rule kind).
    pub observed: u64,
    /// The rule's inclusive limit, in the same unit as `observed`.
    pub limit: u64,
}

/// Everything rule evaluation reads, collected after the run.
pub struct SloInputs<'a> {
    /// Per-`(layer, op)` latency histograms (see
    /// [`crate::metrics::layer_histograms`]).
    pub latencies: &'a BTreeMap<(&'static str, &'static str), Histogram>,
    /// Per-resource utilisation time series: `(name, window fractions)`
    /// (see [`crate::monitor::Monitor::window_fractions`]).
    pub utilisation: &'a [(String, Vec<f64>)],
    /// The telemetry registry (counter totals).
    pub telemetry: &'a Telemetry,
}

/// `*`-suffix / wildcard pattern match.
fn pat_matches(pat: &str, s: &str) -> bool {
    if pat == "*" {
        return true;
    }
    match pat.strip_suffix('*') {
        Some(prefix) => s.starts_with(prefix),
        None => pat == s,
    }
}

/// Longest run of consecutive windows at or above `threshold_permille`.
fn longest_burn(fractions: &[f64], threshold_permille: u32) -> u64 {
    let thr = threshold_permille as f64 / 1000.0;
    let mut best = 0u64;
    let mut cur = 0u64;
    for &f in fractions {
        if f >= thr {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// Evaluate `rules` against a finished run, producing one verdict per
/// rule, in rule order.  Pure and deterministic: identical inputs yield
/// identical verdicts.
// simlint::amortized — post-run evaluation, called once per report
pub fn evaluate_slos(rules: &[SloRule], inputs: &SloInputs) -> Vec<SloVerdict> {
    rules
        .iter()
        .map(|r| {
            let (observed, limit) = match &r.kind {
                SloKind::LatencyQuantile {
                    layer,
                    op,
                    quantile_permille,
                    max_ns,
                } => {
                    let q = *quantile_permille as f64 / 1000.0;
                    let worst = inputs
                        .latencies
                        .iter()
                        .filter(|((l, o), _)| pat_matches(layer, l) && pat_matches(op, o))
                        .map(|(_, h)| h.quantile(q))
                        .max()
                        .unwrap_or(0);
                    (worst, *max_ns)
                }
                SloKind::UtilisationBurn {
                    resource,
                    threshold_permille,
                    max_windows,
                } => {
                    let worst = inputs
                        .utilisation
                        .iter()
                        .filter(|(name, _)| pat_matches(resource, name))
                        .map(|(_, fr)| longest_burn(fr, *threshold_permille))
                        .max()
                        .unwrap_or(0);
                    (worst, *max_windows)
                }
                SloKind::CounterCeiling { metric, max_total } => {
                    let total: u64 = inputs
                        .telemetry
                        .views()
                        .iter()
                        .filter(|v| v.kind == MetricKind::Counter && pat_matches(metric, v.name))
                        .map(|v| v.total)
                        .sum();
                    (total, *max_total)
                }
            };
            SloVerdict {
                rule: r.name.clone(),
                pass: observed <= limit,
                observed,
                limit,
            }
        })
        .collect()
}

/// Render verdicts as an aligned text block (one line per rule).
pub fn render_slo_text(verdicts: &[SloVerdict]) -> String {
    let mut out = String::new();
    for v in verdicts {
        let _ = writeln!(
            out,
            "  {:<32} {:<4} observed {:>12} limit {:>12}",
            v.rule,
            if v.pass { "ok" } else { "FAIL" },
            v.observed,
            v.limit
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Telemetry::disabled();
        let c = t.counter("x");
        t.counter_add(c, at(5), 3);
        t.span_open(at(5), "l", "o");
        assert_eq!(t.total("x"), 0);
        assert_eq!(t.window_ns(), 0);
        assert_eq!(t.counter_events_json(), "");
    }

    #[test]
    fn counters_bucket_into_windows() {
        let mut t = Telemetry::enabled(100);
        let c = t.counter("ops");
        t.counter_add(c, at(10), 1);
        t.counter_add(c, at(90), 2);
        t.counter_add(c, at(250), 4);
        assert_eq!(t.total("ops"), 7);
        let v = t.views();
        assert_eq!(v[0].windows, &[3, 0, 4]);
        assert_eq!(v[0].total, 7);
    }

    #[test]
    fn gauges_track_window_maxima_and_carry_across_gaps() {
        let mut t = Telemetry::enabled(100);
        let g = t.gauge("depth");
        t.gauge_incr(g, at(10)); // 1
        t.gauge_incr(g, at(20)); // 2
        t.gauge_decr(g, at(30)); // 1
                                 // Jump three windows ahead while the level is 1: the gap windows
                                 // must report the carried level, not zero.
        t.gauge_incr(g, at(350)); // 2
        let v = t.views();
        assert_eq!(v[0].windows, &[2, 1, 1, 2]);
        assert_eq!(v[0].total, 2);
    }

    #[test]
    fn span_counters_intern_per_layer_op() {
        let mut t = Telemetry::enabled(1000);
        t.span_open(at(1), "retry", "backoff");
        t.span_open(at(2), "retry", "backoff");
        t.span_open(at(3), "rebuild", "wave");
        assert_eq!(t.total("span.retry.backoff"), 2);
        assert_eq!(t.total("span.rebuild.wave"), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resource_gauges_intern_by_index() {
        let mut t = Telemetry::enabled(1000);
        let a = t.resource_gauge(3, "nvme0");
        let b = t.resource_gauge(3, "nvme0");
        assert_eq!(a, b);
        t.gauge_incr(a, at(5));
        assert_eq!(t.total("res.nvme0.flows"), 1);
    }

    #[test]
    fn export_is_deterministic_and_padded() {
        let build = || {
            let mut t = Telemetry::enabled(100);
            let c = t.counter("ops");
            let g = t.gauge("depth");
            t.counter_add(c, at(10), 5);
            t.gauge_set(g, at(10), 3);
            t.counter_add(c, at(250), 1);
            t
        };
        let a = build().counter_events_json();
        let b = build().counter_events_json();
        assert_eq!(a, b, "identical streams export byte-identically");
        // Counter rate: 5 events in a 100 ns window = 50M/s.
        assert!(a.contains("\"value\":5,\"rate\":50000000"), "{a}");
        // The gauge row is shorter than the counter row; padding carries
        // the final level into the trailing windows.
        let gauge_events: Vec<&str> = a.matches("\"name\":\"depth\"").collect();
        assert_eq!(gauge_events.len(), 3, "{a}");
        assert!(
            a.contains("\"ts\":0.200,\"pid\":0,\"args\":{\"value\":3}"),
            "{a}"
        );
    }

    #[test]
    fn slo_latency_quantile_matches_and_judges() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 50_000] {
            h.record(v);
        }
        let mut lat = BTreeMap::new();
        lat.insert(("libdaos", "update"), h);
        let tel = Telemetry::enabled(100);
        let inputs = SloInputs {
            latencies: &lat,
            utilisation: &[],
            telemetry: &tel,
        };
        let rules = [
            SloRule::latency("p999-tight", "libdaos", "*", 999, 1_000),
            SloRule::latency("p999-loose", "*", "*", 999, 100_000),
            SloRule::latency("no-match", "nope", "*", 999, 1),
        ];
        let v = evaluate_slos(&rules, &inputs);
        assert!(!v[0].pass, "{v:?}");
        assert!(v[1].pass);
        assert!(v[2].pass, "unmatched rules observe 0 and pass");
        assert_eq!(v[2].observed, 0);
    }

    #[test]
    fn slo_utilisation_burn_counts_consecutive_windows() {
        let util = vec![
            ("nvme0".to_string(), vec![0.99, 0.97, 0.96, 0.10, 0.99]),
            ("nic".to_string(), vec![0.10, 0.10]),
        ];
        let tel = Telemetry::enabled(100);
        let inputs = SloInputs {
            latencies: &BTreeMap::new(),
            utilisation: &util,
            telemetry: &tel,
        };
        let rules = [
            SloRule::utilisation_burn("burn-tight", "nvme*", 950, 2),
            SloRule::utilisation_burn("burn-loose", "*", 950, 3),
        ];
        let v = evaluate_slos(&rules, &inputs);
        assert_eq!(v[0].observed, 3);
        assert!(!v[0].pass);
        assert!(v[1].pass);
    }

    #[test]
    fn slo_counter_ceiling_sums_matching_totals() {
        let mut tel = Telemetry::enabled(100);
        let a = tel.counter("daos.retry.retries");
        let b = tel.counter("daos.retry.timeouts");
        tel.counter_add(a, at(1), 3);
        tel.counter_add(b, at(2), 2);
        let inputs = SloInputs {
            latencies: &BTreeMap::new(),
            utilisation: &[],
            telemetry: &tel,
        };
        let rules = [
            SloRule::counter_ceiling("retries-capped", "daos.retry.*", 4),
            SloRule::counter_ceiling("retries-ok", "daos.retry.*", 5),
        ];
        let v = evaluate_slos(&rules, &inputs);
        assert_eq!(v[0].observed, 5);
        assert!(!v[0].pass);
        assert!(v[1].pass);
    }

    #[test]
    fn slo_text_rendering_is_stable() {
        let v = vec![SloVerdict {
            rule: "r".to_string(),
            pass: true,
            observed: 1,
            limit: 2,
        }];
        assert_eq!(render_slo_text(&v), render_slo_text(&v));
        assert!(render_slo_text(&v).contains("ok"));
    }
}
