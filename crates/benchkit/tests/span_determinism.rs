//! Span-trace determinism: the observability acceptance gate.
//!
//! For every paper scenario, a traced run must (a) leave the replay
//! digest exactly where the untraced run puts it — tracing is pure
//! observation — and (b) replay byte-identically: same span digest, same
//! Chrome `trace_event` JSON, same critical-path report.  On top, each
//! interface stack must actually show up in its trace: parented spans
//! from every layer the scenario's call path crosses.

use benchkit::runreport::{default_slo_rules, run_reported};
use benchkit::scenarios::{run_scenario_digest, RunSpec, Scenario};
use benchkit::tracing::trace_scenario;
use cluster::Calibration;

fn small_spec() -> RunSpec {
    let mut spec = RunSpec::new(1, 1, 2);
    spec.ops_per_proc = 8;
    spec
}

/// Layers whose spans the scenario's call path must produce.
fn expected_layers(scen: Scenario) -> &'static [&'static str] {
    match scen {
        Scenario::IorDaos => &["ior", "libdaos", "target"],
        Scenario::IorDfs => &["ior", "libdfs", "libdaos", "target"],
        Scenario::IorDfuse => &["ior", "dfuse", "libdfs", "libdaos", "target"],
        Scenario::IorDfuseIl => &["ior", "il", "libdfs", "libdaos", "target"],
        Scenario::IorHdf5DfuseIl => &["ior", "hdf5", "il", "libdfs", "libdaos"],
        Scenario::IorHdf5Daos => &["ior", "hdf5", "libdaos", "target"],
        Scenario::FieldIo => &["fieldio", "libdaos", "target"],
        Scenario::FdbDaos => &["fdb", "libdaos", "target"],
        Scenario::IorLustre => &["ior", "lustre"],
        Scenario::FdbLustre => &["fdb", "lustre"],
        Scenario::IorCeph => &["ior", "rados"],
        Scenario::FdbCeph => &["fdb", "rados"],
    }
}

#[test]
fn every_scenario_traces_deterministically() {
    let spec = small_spec();
    let cal = Calibration::default();
    for scen in Scenario::ALL {
        let (_, untraced_digest) = run_scenario_digest(&spec, scen, &cal);
        let a = trace_scenario(&spec, scen, &cal);
        let b = trace_scenario(&spec, scen, &cal);
        assert_eq!(
            a.replay_digest,
            untraced_digest,
            "{}: tracing perturbed the replay digest",
            scen.name()
        );
        assert_eq!(
            a.exports.span_digest,
            b.exports.span_digest,
            "{}: span digest drifted across replays",
            scen.name()
        );
        assert_eq!(
            a.exports.chrome_json,
            b.exports.chrome_json,
            "{}: Chrome export not byte-identical",
            scen.name()
        );
        assert_eq!(
            a.exports.critical_path,
            b.exports.critical_path,
            "{}: critical-path report not byte-identical",
            scen.name()
        );
        assert!(a.exports.span_count > 0, "{}: empty trace", scen.name());
    }
}

#[test]
fn every_scenario_reports_deterministically() {
    // Telemetry + SLO evaluation is pure observation: with the full
    // pipeline on (windowed monitor, span log, metrics registry, SLO
    // rules), every scenario must keep the untelemetered replay digest
    // and export byte-identical artifacts across replays.
    let spec = small_spec();
    let cal = Calibration::default();
    let rules = default_slo_rules();
    for scen in Scenario::ALL {
        let (_, plain_digest) = run_scenario_digest(&spec, scen, &cal);
        let a = run_reported(&spec, scen, &cal, &rules);
        let b = run_reported(&spec, scen, &cal, &rules);
        assert_eq!(
            a.report.replay_digest,
            plain_digest,
            "{}: telemetry perturbed the replay digest",
            scen.name()
        );
        assert_eq!(
            a.report.render_json(),
            b.report.render_json(),
            "{}: run-report JSON not byte-identical",
            scen.name()
        );
        assert_eq!(
            a.report.render_text(),
            b.report.render_text(),
            "{}: run-report text not byte-identical",
            scen.name()
        );
        assert_eq!(
            a.trace_json,
            b.trace_json,
            "{}: counter-track trace not byte-identical",
            scen.name()
        );
        assert!(
            a.trace_json.contains("\"ph\":\"C\""),
            "{}: no counter tracks in trace",
            scen.name()
        );
        assert!(
            !a.report.counters.is_empty(),
            "{}: no counters sampled",
            scen.name()
        );
        assert!(
            !a.report.verdicts.is_empty(),
            "{}: no SLO verdicts",
            scen.name()
        );
    }
}

#[test]
fn every_interface_stack_emits_parented_spans() {
    let spec = small_spec();
    let cal = Calibration::default();
    for scen in Scenario::ALL {
        let t = trace_scenario(&spec, scen, &cal);
        let layers = t.exports.layers();
        for want in expected_layers(scen) {
            assert!(
                layers.contains(want),
                "{}: no {want} span on the critical path (saw {layers:?})",
                scen.name()
            );
        }
        // parentage: some span nests under another (the JSON records the
        // parent id in its args; 0 marks a root)
        let nested = t
            .exports
            .chrome_json
            .split("},{")
            .any(|ev| ev.contains("\"parent\":") && !ev.contains("\"parent\":0,"));
        assert!(nested, "{}: all spans are roots", scen.name());
    }
}
