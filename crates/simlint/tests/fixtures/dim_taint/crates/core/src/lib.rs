//! Fixture client: one true positive and one clean negative for every
//! stage-4 dimension analysis.

pub struct Xfer {
    // simlint::dim(bytes)
    pub len: f64,
    // simlint::dim(ns)
    pub elapsed: u64,
    // simlint::dim(bytes_per_sec)
    pub bw: f64,
}

impl Xfer {
    // TP: bytes + ns can never be meaningful.
    pub fn mixed_sum(&self) -> f64 {
        self.len + self.elapsed as f64
    }

    // Negative: same dimension on both sides.
    pub fn total_len(&self, other: &Xfer) -> f64 {
        self.len + other.len
    }

    // TP: the division yields seconds; the `* 1e9` was forgotten, so a
    // seconds value reaches the nanosecond sink nine orders too small.
    pub fn eta_broken(&self) -> Step {
        let secs = self.len / self.bw;
        Step::delay(secs as u64)
    }

    // Negative: the registered conversion helper restores nanoseconds.
    pub fn eta_fixed(&self) -> Step {
        let secs = self.len / self.bw;
        Step::delay(secs_to_ns(secs))
    }

    // TP: bytes × rate is a derived product no sink can want.
    pub fn units_broken(&self) -> Step {
        Step::transfer(self.len * self.bw)
    }

    // Negative: plain bytes satisfy the byte sink.
    pub fn units_fixed(&self) -> Step {
        Step::transfer(self.len)
    }

    // TP: raw conversion constant outside the units module.
    pub fn eta_inline(&self) -> u64 {
        (self.len / self.bw * 1e9) as u64
    }

    // Negative: the named constant carries the conversion meaning.
    pub fn eta_named(&self) -> u64 {
        (self.len / self.bw * NS_PER_SEC) as u64
    }

    // Negative: a deliberate dimensionless reinterpretation, suppressed
    // with a reason like every other simlint stage.
    // simlint::allow(dim-mixed-add) — packed wire encoding folds fields into one word by contract
    pub fn packed(&self) -> f64 {
        self.len + self.elapsed as f64
    }
}
