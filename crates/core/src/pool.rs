//! Pool maps: targets, their states, and object placement.
//!
//! A DAOS pool spans a set of engines (one per server node in the
//! paper's deployments), each exposing 16 targets backed by one NVMe
//! device each.  Objects are placed on targets by a deterministic hash
//! of their OID, in shard groups whose width depends on the object class
//! (1 for plain shards, `r` for replication, `k+p` for erasure coding).

use crate::class::ObjectClass;
use crate::oid::Oid;

/// One DAOS target: `(server rank, target index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetId {
    /// Engine rank (server node index within the pool).
    pub server: u16,
    /// Target index within the engine.
    pub target: u16,
}

impl TargetId {
    /// Pack into the opaque `u64` payload carried by
    /// [`simkit::FaultAction`] crash/restart events.
    pub fn pack(self) -> u64 {
        (self.server as u64) << 16 | self.target as u64
    }

    /// Inverse of [`TargetId::pack`].
    pub fn unpack(v: u64) -> TargetId {
        TargetId {
            server: (v >> 16) as u16,
            target: (v & 0xffff) as u16,
        }
    }
}

/// Health of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetState {
    /// Serving I/O.
    Up,
    /// Excluded/failed: receives no new I/O; its shards are unavailable.
    Down,
}

/// The pool map: target inventory and health.
#[derive(Debug, Clone)]
pub struct PoolMap {
    servers: usize,
    targets_per_server: usize,
    state: Vec<TargetState>,
}

/// The placement of one object: shard groups of equal width.
///
/// * plain (`S*`/`SX`): `groups[g] = [target]`;
/// * replication: `groups[g] = [replica0, replica1, …]`;
/// * erasure coding: `groups[g] = [data0 … data(k-1), parity0 …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Shard groups in dkey order.
    pub groups: Vec<Vec<TargetId>>,
    /// The class the layout was generated for.
    pub class: ObjectClass,
}

impl Layout {
    /// Group responsible for a dkey (Array chunk index or KV dkey hash).
    pub fn group_for(&self, dkey_hash: u64) -> &[TargetId] {
        &self.groups[(dkey_hash % self.groups.len() as u64) as usize]
    }

    /// Index of the group responsible for a dkey.
    pub fn group_index(&self, dkey_hash: u64) -> usize {
        (dkey_hash % self.groups.len() as u64) as usize
    }
}

impl PoolMap {
    /// A pool over `servers` engines with `targets_per_server` targets
    /// each, all up.
    pub fn new(servers: usize, targets_per_server: usize) -> Self {
        assert!(servers > 0 && targets_per_server > 0);
        PoolMap {
            servers,
            targets_per_server,
            state: vec![TargetState::Up; servers * targets_per_server],
        }
    }

    /// Engines in the pool.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Targets per engine.
    pub fn targets_per_server(&self) -> usize {
        self.targets_per_server
    }

    /// Total targets, up or down.
    pub fn total_targets(&self) -> usize {
        self.state.len()
    }

    /// Linear index of a target.
    pub fn index(&self, t: TargetId) -> usize {
        t.server as usize * self.targets_per_server + t.target as usize
    }

    /// Target at a linear index.
    pub fn target_at(&self, idx: usize) -> TargetId {
        TargetId {
            server: (idx / self.targets_per_server) as u16,
            target: (idx % self.targets_per_server) as u16,
        }
    }

    /// Health of a target.
    pub fn state(&self, t: TargetId) -> TargetState {
        self.state[self.index(t)]
    }

    /// True when the target serves I/O.
    pub fn is_up(&self, t: TargetId) -> bool {
        self.state(t) == TargetState::Up
    }

    /// Mark a target down (failure injection / `dmg pool exclude`).
    pub fn exclude(&mut self, t: TargetId) {
        let i = self.index(t);
        self.state[i] = TargetState::Down;
    }

    /// Mark every target of a server down.
    pub fn exclude_server(&mut self, server: u16) {
        for t in 0..self.targets_per_server as u16 {
            self.exclude(TargetId { server, target: t });
        }
    }

    /// Bring a target back up (reintegration).
    pub fn reintegrate(&mut self, t: TargetId) {
        let i = self.index(t);
        self.state[i] = TargetState::Up;
    }

    /// Currently-up targets, in linear order.
    // simlint::allow(hot-alloc) — collects the live-target view for a placement decision; runs per create/rebuild, not per I/O event
    pub fn up_targets(&self) -> Vec<TargetId> {
        (0..self.state.len())
            .filter(|&i| self.state[i] == TargetState::Up)
            .map(|i| self.target_at(i))
            .collect()
    }

    /// Generate the layout for an object: a **per-object pseudorandom
    /// permutation** of the up targets (seeded by the OID), cut into
    /// shard groups of the class's width.
    ///
    /// The permutation matters: real DAOS placement maps each object's
    /// shards through an independent pseudorandom layout, so concurrent
    /// sequential writers never march over the targets in correlated
    /// order.  (An earlier rotation-based layout produced convoys of
    /// processes colliding on the same devices and cost half the
    /// cluster's bandwidth at queue depth 1.)
    pub fn layout(&self, oid: &Oid, class: ObjectClass) -> Layout {
        self.layout_salted(oid, class, 0)
    }

    /// Like [`PoolMap::layout`], with an extra seed mixed into the
    /// permutation.  DAOS object ids are only unique within a container,
    /// so placement salts them with container identity; without this,
    /// object `N` of every container would land on the same targets.
    // simlint::allow(hot-alloc) — placement computes a fresh layout per object create (and rebuild remap), not per I/O event
    pub fn layout_salted(&self, oid: &Oid, class: ObjectClass, salt: u64) -> Layout {
        let mut up = self.up_targets();
        assert!(!up.is_empty(), "no targets up");
        let width = class.group_width();
        assert!(
            width <= up.len(),
            "class {class} needs {width} targets, only {} up",
            up.len()
        );
        let groups_n = class.shard_groups(up.len());
        // seeded Fisher-Yates shuffle
        let mut rng = simkit::SplitMix64::new(
            oid.placement_hash() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        for i in (1..up.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            up.swap(i, j);
        }
        // fault-domain awareness: interleave the shuffled targets by
        // server so that the members of a shard group land on distinct
        // nodes whenever enough nodes are up (replicas and EC cells must
        // survive a node loss)
        let mut per_server: Vec<Vec<TargetId>> = vec![Vec::new(); self.servers];
        let mut server_order: Vec<usize> = Vec::new();
        for t in up.iter().rev() {
            if per_server[t.server as usize].is_empty() {
                server_order.push(t.server as usize);
            }
            per_server[t.server as usize].push(*t);
        }
        let mut interleaved: Vec<TargetId> = Vec::with_capacity(up.len());
        let mut round = 0;
        while interleaved.len() < up.len() {
            for &s in &server_order {
                if let Some(&t) = per_server[s].get(round) {
                    interleaved.push(t);
                }
            }
            round += 1;
        }
        let groups = (0..groups_n)
            .map(|g| {
                (0..width)
                    .map(|m| interleaved[(g * width + m) % interleaved.len()])
                    .collect()
            })
            .collect();
        Layout { groups, class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::OidAllocator;

    #[test]
    fn indexing_round_trips() {
        let pm = PoolMap::new(4, 16);
        for i in 0..pm.total_targets() {
            assert_eq!(pm.index(pm.target_at(i)), i);
        }
    }

    #[test]
    fn exclusion_and_reintegration() {
        let mut pm = PoolMap::new(2, 4);
        let t = TargetId {
            server: 1,
            target: 2,
        };
        assert!(pm.is_up(t));
        pm.exclude(t);
        assert!(!pm.is_up(t));
        assert_eq!(pm.up_targets().len(), 7);
        pm.reintegrate(t);
        assert!(pm.is_up(t));
        pm.exclude_server(0);
        assert_eq!(pm.up_targets().len(), 4);
    }

    #[test]
    fn s1_layout_single_target() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::S1, 0);
        let l = pm.layout(&oid, ObjectClass::S1);
        assert_eq!(l.groups.len(), 1);
        assert_eq!(l.groups[0].len(), 1);
    }

    #[test]
    fn sx_layout_covers_all_targets() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::SX, 0);
        let l = pm.layout(&oid, ObjectClass::SX);
        assert_eq!(l.groups.len(), 64);
        let mut seen: Vec<TargetId> = l.groups.iter().map(|g| g[0]).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 64, "every target appears exactly once");
    }

    #[test]
    fn ec_groups_have_distinct_members() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::EC_2P1, 0);
        let l = pm.layout(&oid, ObjectClass::EC_2P1);
        for g in &l.groups {
            assert_eq!(g.len(), 3);
            let mut m = g.clone();
            m.sort();
            m.dedup();
            assert_eq!(m.len(), 3, "group members must be distinct targets");
        }
    }

    #[test]
    fn layout_is_deterministic_and_spread() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let mut starts = std::collections::HashSet::new();
        for _ in 0..64 {
            let oid = alloc.next(ObjectClass::S1, 0);
            let l1 = pm.layout(&oid, ObjectClass::S1);
            let l2 = pm.layout(&oid, ObjectClass::S1);
            assert_eq!(l1, l2, "deterministic");
            starts.insert(l1.groups[0][0]);
        }
        assert!(
            starts.len() > 32,
            "S1 objects spread over targets: {}",
            starts.len()
        );
    }

    #[test]
    fn layout_avoids_down_targets() {
        let mut pm = PoolMap::new(2, 4);
        pm.exclude_server(0);
        let mut alloc = OidAllocator::new();
        for _ in 0..32 {
            let oid = alloc.next(ObjectClass::RP_2, 0);
            let l = pm.layout(&oid, ObjectClass::RP_2);
            for g in &l.groups {
                for t in g {
                    assert_eq!(t.server, 1, "placement must skip down server");
                }
            }
        }
    }

    #[test]
    fn group_for_is_stable() {
        let pm = PoolMap::new(2, 8);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::SX, 0);
        let l = pm.layout(&oid, ObjectClass::SX);
        assert_eq!(l.group_for(5), l.group_for(5 + 16 * l.groups.len() as u64));
        assert_eq!(l.group_index(3), 3 % l.groups.len());
    }
}
