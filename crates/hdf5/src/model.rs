//! HDF5 file model, POSIX VFD and DAOS VOL connector.

use cluster::payload::{Payload, ReadPayload};
use cluster::posix::{FileId, FsError, PosixFs};
use cluster::Calibration;
use daos_core::{
    ContainerId, ContainerProps, DaosError, DaosSystem, ObjectClass, Oid, Retriable, RetryExec,
    RetryPolicy, RetryStats,
};
use simkit::{ResourceId, Scheduler, Step};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Errors surfaced by the HDF5 layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hdf5Error {
    /// Unknown dataset name.
    NoSuchDataset,
    /// Underlying file-system error.
    Fs(FsError),
    /// Underlying DAOS error.
    Daos(DaosError),
}

impl From<FsError> for Hdf5Error {
    fn from(e: FsError) -> Self {
        Hdf5Error::Fs(e)
    }
}
impl From<DaosError> for Hdf5Error {
    fn from(e: DaosError) -> Self {
        Hdf5Error::Daos(e)
    }
}

impl Retriable for Hdf5Error {
    fn is_retriable(&self) -> bool {
        match self {
            Hdf5Error::NoSuchDataset => false,
            Hdf5Error::Fs(e) => e.is_retriable(),
            Hdf5Error::Daos(e) => e.is_retriable(),
        }
    }
}

/// Shared library state: the per-client-node HDF5 processing ceiling.
// simlint::sim_state — replay-visible simulation state
pub struct H5Runtime {
    node_bw: Vec<ResourceId>,
    cal: Calibration,
    /// Library-wide retry machinery for dataset I/O (off by default).
    /// A `RefCell` so dataset ops can take `&H5Runtime` unchanged.
    retry: RefCell<RetryExec>,
}

impl H5Runtime {
    /// Create the per-node library resources.
    pub fn new(sched: &mut Scheduler, client_nodes: usize, cal: &Calibration) -> H5Runtime {
        let node_bw = (0..client_nodes)
            .map(|c| sched.add_resource(format!("hdf5.cli{c}"), cal.hdf5_client_bw))
            .collect();
        H5Runtime {
            node_bw,
            cal: cal.clone(),
            retry: RefCell::new(RetryExec::disabled()),
        }
    }

    /// Configure retry/timeout/backoff on dataset I/O (`seed` drives
    /// the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RefCell::new(RetryExec::new(policy, seed));
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.borrow().stats()
    }

    /// Library-side processing of `bytes` on a node.
    fn lib_step(&self, node: usize, bytes: f64) -> Step {
        Step::transfer(bytes, [self.node_bw[node]])
    }
}

// ---------------------------------------------------------------------------
// POSIX VFD
// ---------------------------------------------------------------------------

/// Superblock + header region size at the front of the file.  Metadata
/// updates stay inside this region; dataset data starts after it.
const H5_HEADER_BYTES: u64 = 64 * 1024;
/// Index records live in the upper half of the header: 64-byte packed
/// entries `[name_len u16][name ≤38][offset u64][len u64]`, so a file
/// re-opened in Full data mode can recover its dataset index — the
/// role the real object-header messages play.
const H5_INDEX_BASE: u64 = H5_HEADER_BYTES / 2;
const H5_INDEX_ENTRY: u64 = 64;
const H5_INDEX_NAME_MAX: usize = 38;

fn pack_index_entry(name: &str, off: u64, len: u64) -> Vec<u8> {
    let name = name.as_bytes();
    assert!(
        name.len() <= H5_INDEX_NAME_MAX,
        "dataset name too long for index"
    );
    let mut v = vec![0u8; H5_INDEX_ENTRY as usize];
    v[0..2].copy_from_slice(&(name.len() as u16).to_le_bytes());
    v[2..2 + name.len()].copy_from_slice(name);
    v[40..48].copy_from_slice(&off.to_le_bytes());
    v[48..56].copy_from_slice(&len.to_le_bytes());
    v
}

fn unpack_index_entry(buf: &[u8]) -> Option<(String, u64, u64)> {
    let le_u64 = |at: usize| -> Option<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(buf.get(at..at + 8)?);
        Some(u64::from_le_bytes(b))
    };
    let name_len = u16::from_le_bytes([*buf.first()?, *buf.get(1)?]) as usize;
    if name_len == 0 || name_len > H5_INDEX_NAME_MAX {
        return None;
    }
    let name = String::from_utf8(buf.get(2..2 + name_len)?.to_vec()).ok()?;
    let off = le_u64(40)?;
    let len = le_u64(48)?;
    Some((name, off, len))
}

/// An HDF5 file on a POSIX mount (the VFD driver).
///
/// Layout: `[header | data heap …]`; the chunk index and object headers
/// are updated in the header region alongside every dataset write.
// simlint::sim_state — replay-visible simulation state
pub struct H5PosixFile {
    handle: FileId,
    node: usize,
    heap_end: u64,
    /// dataset name -> (offset, len)
    index: BTreeMap<String, (u64, u64)>,
}

impl H5PosixFile {
    /// `H5Fcreate`: create the file and write the superblock.
    pub fn create<P: PosixFs + ?Sized>(
        rt: &H5Runtime,
        fs: &mut P,
        node: usize,
        path: &str,
    ) -> Result<(H5PosixFile, Step), Hdf5Error> {
        let _ = rt;
        let (handle, s1) = fs.open(node, path, true)?;
        let s2 = fs.write(node, handle, 0, Payload::Sized(H5_HEADER_BYTES))?;
        Ok((
            H5PosixFile {
                handle,
                node,
                heap_end: H5_HEADER_BYTES,
                index: BTreeMap::new(),
            },
            Step::span("hdf5", "create", 0, Step::seq([s1, s2])),
        ))
    }

    /// `H5Fopen` for reading an existing file.
    pub fn open<P: PosixFs + ?Sized>(
        rt: &H5Runtime,
        fs: &mut P,
        node: usize,
        path: &str,
    ) -> Result<(H5PosixFile, Step), Hdf5Error> {
        let (handle, s1) = fs.open(node, path, false)?;
        // superblock + root header reads; in Full data mode the packed
        // index records are parsed back into the dataset index
        let (header, s2) = fs.read(node, handle, 0, H5_HEADER_BYTES)?;
        let _ = rt;
        let mut index = BTreeMap::new();
        let mut heap_end = H5_HEADER_BYTES;
        if let Some(bytes) = header.bytes() {
            let mut off = H5_INDEX_BASE as usize;
            while off + H5_INDEX_ENTRY as usize <= bytes.len() {
                if let Some((name, doff, dlen)) =
                    unpack_index_entry(&bytes[off..off + H5_INDEX_ENTRY as usize])
                {
                    heap_end = heap_end.max(doff + dlen);
                    index.insert(name, (doff, dlen));
                }
                off += H5_INDEX_ENTRY as usize;
            }
        }
        Ok((
            H5PosixFile {
                handle,
                node,
                heap_end,
                index,
            },
            Step::span("hdf5", "open", H5_HEADER_BYTES, Step::seq([s1, s2])),
        ))
    }

    /// Write one dataset: data fragments into chunk-sized POSIX writes,
    /// plus the metadata updates (object header, chunk index) in the
    /// header region.
    pub fn dataset_write<P: PosixFs + ?Sized>(
        &mut self,
        rt: &H5Runtime,
        fs: &mut P,
        name: &str,
        data: Payload,
    ) -> Result<Step, Hdf5Error> {
        let bytes = data.len();
        let mut retry = rt.retry.borrow_mut();
        let s = retry.run_step(|| self.dataset_write_inner(rt, fs, name, data.clone()))?;
        Ok(Step::span("hdf5", "dataset_write", bytes, s))
    }

    fn dataset_write_inner<P: PosixFs + ?Sized>(
        &mut self,
        rt: &H5Runtime,
        fs: &mut P,
        name: &str,
        data: Payload,
    ) -> Result<Step, Hdf5Error> {
        let len = data.len();
        let off = self.heap_end;
        self.heap_end += len;
        self.index.insert(name.to_string(), (off, len));
        let frag = rt.cal.hdf5_fragment_bytes as u64;
        let mut steps = vec![rt.lib_step(self.node, len as f64)];
        // fragmented data writes (sequential in the VFD)
        match data {
            Payload::Bytes(bytes) => {
                let mut pos = 0u64;
                while pos < len {
                    let take = frag.min(len - pos) as usize;
                    let chunk = bytes[pos as usize..pos as usize + take].to_vec();
                    steps.push(fs.write(
                        self.node,
                        self.handle,
                        off + pos,
                        Payload::Bytes(chunk),
                    )?);
                    pos += take as u64;
                }
            }
            Payload::Sized(_) => {
                let mut pos = 0u64;
                while pos < len {
                    let take = frag.min(len - pos);
                    steps.push(fs.write(
                        self.node,
                        self.handle,
                        off + pos,
                        Payload::Sized(take),
                    )?);
                    pos += take;
                }
            }
        }
        // metadata updates: a persisted index record plus the object
        // header/chunk-index touches (all inside the header region)
        let slot = self.index.len() as u64 - 1;
        let rec_off = H5_INDEX_BASE
            + (slot % ((H5_HEADER_BYTES - H5_INDEX_BASE) / H5_INDEX_ENTRY)) * H5_INDEX_ENTRY;
        steps.push(fs.write(
            self.node,
            self.handle,
            rec_off,
            Payload::Bytes(pack_index_entry(name, off, len)),
        )?);
        let md_span = H5_INDEX_BASE
            .saturating_sub(rt.cal.hdf5_md_bytes as u64)
            .max(1);
        for i in 1..rt.cal.hdf5_md_ops_per_write {
            let md_off = (self.index.len() as u64 * 64 + i as u64 * 8) % md_span;
            steps.push(fs.write(
                self.node,
                self.handle,
                md_off,
                Payload::Sized(rt.cal.hdf5_md_bytes as u64),
            )?);
        }
        Ok(Step::seq(steps))
    }

    /// Read one dataset back: chunk-index lookup plus fragmented reads.
    pub fn dataset_read<P: PosixFs + ?Sized>(
        &mut self,
        rt: &H5Runtime,
        fs: &mut P,
        name: &str,
    ) -> Result<(ReadPayload, Step), Hdf5Error> {
        let mut retry = rt.retry.borrow_mut();
        let (data, s) = retry.run(|| self.dataset_read_inner(rt, fs, name))?;
        let bytes = data.len();
        Ok((data, Step::span("hdf5", "dataset_read", bytes, s)))
    }

    fn dataset_read_inner<P: PosixFs + ?Sized>(
        &mut self,
        rt: &H5Runtime,
        fs: &mut P,
        name: &str,
    ) -> Result<(ReadPayload, Step), Hdf5Error> {
        let &(off, len) = self.index.get(name).ok_or(Hdf5Error::NoSuchDataset)?;
        let mut steps = vec![rt.lib_step(self.node, len as f64)];
        // chunk index lookup
        let (_, s) = fs.read(self.node, self.handle, 0, rt.cal.hdf5_md_bytes as u64)?;
        steps.push(s);
        let frag = rt.cal.hdf5_fragment_bytes as u64;
        let mut out: Option<Vec<u8>> = None;
        let mut sized = 0u64;
        let mut pos = 0u64;
        while pos < len {
            let take = frag.min(len - pos);
            let (piece, s) = fs.read(self.node, self.handle, off + pos, take)?;
            steps.push(s);
            match piece {
                ReadPayload::Bytes(b) => out.get_or_insert_with(Vec::new).extend_from_slice(&b),
                ReadPayload::Sized(n) => sized += n,
            }
            pos += take;
        }
        let data = match out {
            Some(b) => ReadPayload::Bytes(b),
            None => ReadPayload::Sized(sized),
        };
        Ok((data, Step::seq(steps)))
    }

    /// Names of stored datasets.
    pub fn datasets(&self) -> Vec<String> {
        let mut v: Vec<String> = self.index.keys().cloned().collect();
        v.sort();
        v
    }

    /// `H5Fclose`: flush metadata and close.
    pub fn close<P: PosixFs + ?Sized>(self, rt: &H5Runtime, fs: &mut P) -> Result<Step, Hdf5Error> {
        let s1 = fs.write(
            self.node,
            self.handle,
            0,
            Payload::Sized(rt.cal.hdf5_md_bytes as u64),
        )?;
        let s2 = fs.close(self.node, self.handle)?;
        Ok(Step::span("hdf5", "close", 0, Step::seq([s1, s2])))
    }
}

// ---------------------------------------------------------------------------
// DAOS VOL connector
// ---------------------------------------------------------------------------

/// An HDF5 "file" stored through the DAOS VOL connector: a container of
/// its own, a metadata KV, and one Array object per dataset write.
// simlint::sim_state — replay-visible simulation state
pub struct H5DaosFile {
    daos: Rc<RefCell<DaosSystem>>,
    node: usize,
    cid: ContainerId,
    md_kv: Oid,
    index: BTreeMap<String, (Oid, u64)>,
    oclass: ObjectClass,
}

impl H5DaosFile {
    /// `H5Fcreate` through the VOL: creates a dedicated container (the
    /// design decision the paper calls out) plus the file metadata KV.
    pub fn create(
        rt: &H5Runtime,
        daos: &Rc<RefCell<DaosSystem>>,
        node: usize,
        oclass: ObjectClass,
    ) -> Result<(H5DaosFile, Step), Hdf5Error> {
        let _ = rt;
        let (cid, s1) = daos
            .borrow_mut()
            .cont_create(node, ContainerProps::default());
        let (md_kv, s2) = daos.borrow_mut().kv_create(node, cid, ObjectClass::S1)?;
        Ok((
            H5DaosFile {
                daos: daos.clone(),
                node,
                cid,
                md_kv,
                index: BTreeMap::new(),
                oclass,
            },
            Step::span("hdf5", "create", 0, Step::seq([s1, s2])),
        ))
    }

    /// The backing container.
    pub fn container(&self) -> ContainerId {
        self.cid
    }

    /// Write one dataset: a fresh Array object for the data, an index
    /// entry in the file's KV, and a container-metadata transaction
    /// against the pool metadata service (dataset creation updates
    /// container-level metadata).
    pub fn dataset_write(
        &mut self,
        rt: &H5Runtime,
        name: &str,
        data: Payload,
    ) -> Result<Step, Hdf5Error> {
        let bytes = data.len();
        let mut retry = rt.retry.borrow_mut();
        let s = retry.run_step(|| self.dataset_write_inner(rt, name, data.clone()))?;
        Ok(Step::span("hdf5", "dataset_write", bytes, s))
    }

    fn dataset_write_inner(
        &mut self,
        rt: &H5Runtime,
        name: &str,
        data: Payload,
    ) -> Result<Step, Hdf5Error> {
        let len = data.len();
        let mut daos = self.daos.borrow_mut();
        let (oid, s1) = daos.array_create(self.node, self.cid, self.oclass, 1 << 20)?;
        let s2 = daos.array_write(self.node, self.cid, oid, 0, data)?;
        let entry = match daos.data_mode() {
            daos_core::DataMode::Full => {
                let mut v = Vec::with_capacity(24);
                v.extend_from_slice(&oid.hi.to_le_bytes());
                v.extend_from_slice(&oid.lo.to_le_bytes());
                v.extend_from_slice(&len.to_le_bytes());
                Payload::Bytes(v)
            }
            daos_core::DataMode::Sized => Payload::Sized(24),
        };
        let s3 = daos.kv_put(self.node, self.cid, self.md_kv, name.as_bytes(), entry)?;
        let s4 = daos.pool_md_op(1.0);
        drop(daos);
        self.index.insert(name.to_string(), (oid, len));
        Ok(Step::seq([
            rt.lib_step(self.node, len as f64),
            s1,
            s2,
            s3,
            s4,
        ]))
    }

    /// Read one dataset: container-metadata lookup, KV index fetch, then
    /// the Array data.
    pub fn dataset_read(
        &mut self,
        rt: &H5Runtime,
        name: &str,
    ) -> Result<(ReadPayload, Step), Hdf5Error> {
        let mut retry = rt.retry.borrow_mut();
        let (data, s) = retry.run(|| self.dataset_read_inner(rt, name))?;
        let bytes = data.len();
        Ok((data, Step::span("hdf5", "dataset_read", bytes, s)))
    }

    fn dataset_read_inner(
        &mut self,
        rt: &H5Runtime,
        name: &str,
    ) -> Result<(ReadPayload, Step), Hdf5Error> {
        let &(oid, len) = self.index.get(name).ok_or(Hdf5Error::NoSuchDataset)?;
        let mut daos = self.daos.borrow_mut();
        let s0 = daos.pool_md_op(1.0);
        let (_, s1) = daos.kv_get(self.node, self.cid, self.md_kv, name.as_bytes())?;
        let (data, s2) = daos.array_read(self.node, self.cid, oid, 0, len)?;
        drop(daos);
        Ok((
            data,
            Step::seq([rt.lib_step(self.node, len as f64), s0, s1, s2]),
        ))
    }

    /// Names of stored datasets.
    pub fn datasets(&self) -> Vec<String> {
        let mut v: Vec<String> = self.index.keys().cloned().collect();
        v.sort();
        v
    }

    /// `H5Fclose`: closes the container.
    pub fn close(self) -> Result<Step, Hdf5Error> {
        let s = self.daos.borrow_mut().cont_close(self.node, self.cid)?;
        Ok(Step::span("hdf5", "close", 0, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::DataMode;
    use daos_dfs::{Dfs, DfsOpts};
    use daos_dfuse::{DfuseMount, DfuseOpts};
    use simkit::{run, OpId, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn daos_fixture() -> (Scheduler, Rc<RefCell<DaosSystem>>, H5Runtime) {
        let mut sched = Scheduler::new();
        let spec = ClusterSpec::new(2, 1);
        let topo = spec.build(&mut sched);
        let rt = H5Runtime::new(&mut sched, 1, &topo.cal);
        let daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        (sched, Rc::new(RefCell::new(daos)), rt)
    }

    #[test]
    fn posix_vfd_round_trip_on_dfuse() {
        let (mut sched, daos, rt) = daos_fixture();
        let (cid, s) = daos.borrow_mut().cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (dfs, s) = Dfs::format(daos.clone(), 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        let mut mount = DfuseMount::mount(dfs, &mut sched, DfuseOpts::with_interception());

        let (mut h5, s) = H5PosixFile::create(&rt, &mut mount, 0, "/out.h5").unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(4);
        let mut data = vec![0u8; 700_000];
        rng.fill_bytes(&mut data);
        let s = h5
            .dataset_write(&rt, &mut mount, "temp_000", Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);
        let (r, s) = h5.dataset_read(&rt, &mut mount, "temp_000").unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        assert_eq!(h5.datasets(), vec!["temp_000"]);
        let s = h5.close(&rt, &mut mount).unwrap();
        exec(&mut sched, s);
    }

    #[test]
    fn posix_vfd_fragments_and_adds_metadata_ops() {
        let (mut sched, daos, rt) = daos_fixture();
        let (cid, s) = daos.borrow_mut().cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (mut dfs, s) = Dfs::format(daos.clone(), 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        let (mut h5, s) = H5PosixFile::create(&rt, &mut dfs, 0, "/f.h5").unwrap();
        exec(&mut sched, s);
        // 1 MiB = 4 × 256 KiB fragments + 2 metadata writes: the lib
        // issues 6 dfs writes, observable as 6+ sub-steps in the chain.
        let step = h5
            .dataset_write(&rt, &mut dfs, "d", Payload::Sized(1 << 20))
            .unwrap();
        fn count_seqs(s: &Step) -> usize {
            match s {
                Step::Seq(v) => v.len(),
                Step::Span { inner, .. } => count_seqs(inner),
                _ => 0,
            }
        }
        assert!(
            count_seqs(&step) >= 7,
            "lib step + 4 fragments + 2 md: {step:?}"
        );
        exec(&mut sched, step);
    }

    #[test]
    fn daos_vol_round_trip() {
        let (mut sched, daos, rt) = daos_fixture();
        let (mut h5, s) = H5DaosFile::create(&rt, &daos, 0, ObjectClass::SX).unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(5);
        let mut data = vec![0u8; 300_000];
        rng.fill_bytes(&mut data);
        let s = h5
            .dataset_write(&rt, "press_850", Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);
        let (r, s) = h5.dataset_read(&rt, "press_850").unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        assert!(matches!(
            h5.dataset_read(&rt, "missing").unwrap_err(),
            Hdf5Error::NoSuchDataset
        ));
        exec(&mut sched, h5.close().unwrap());
    }

    #[test]
    fn daos_vol_uses_container_per_file_and_object_per_write() {
        let (mut sched, daos, rt) = daos_fixture();
        let (mut a, s) = H5DaosFile::create(&rt, &daos, 0, ObjectClass::SX).unwrap();
        exec(&mut sched, s);
        let (b, s) = H5DaosFile::create(&rt, &daos, 0, ObjectClass::SX).unwrap();
        exec(&mut sched, s);
        assert_ne!(a.container(), b.container(), "container per file");
        for i in 0..4 {
            let s = a
                .dataset_write(&rt, &format!("d{i}"), Payload::Sized(1024))
                .unwrap();
            exec(&mut sched, s);
        }
        // 4 data objects + 1 metadata KV
        assert_eq!(daos.borrow().object_count(a.container()).unwrap(), 5);
        let _ = b;
    }

    #[test]
    fn vol_write_charges_pool_metadata_service() {
        let (mut sched, daos, rt) = daos_fixture();
        let (mut h5, s) = H5DaosFile::create(&rt, &daos, 0, ObjectClass::SX).unwrap();
        exec(&mut sched, s);
        let step = h5.dataset_write(&rt, "d", Payload::Sized(1 << 20)).unwrap();
        // the chain must include a pool-md transfer (capacity = pool_md_iops)
        let md_cap = daos.borrow().cal().pool_md_iops;
        fn has_cap(s: &Step, sched: &Scheduler, cap: f64) -> bool {
            match s {
                Step::Transfer { path, .. } => {
                    path.iter().any(|&r| (sched.capacity(r) - cap).abs() < 1e-6)
                }
                Step::Seq(v) | Step::Par(v) => v.iter().any(|s| has_cap(s, sched, cap)),
                Step::Span { inner, .. } => has_cap(inner, sched, cap),
                _ => false,
            }
        }
        assert!(
            has_cap(&step, &sched, md_cap),
            "dataset write must hit pool md"
        );
        exec(&mut sched, step);
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::DataMode;
    use daos_dfs::{Dfs, DfsOpts};
    use simkit::{run, OpId, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink);
    }

    #[test]
    fn reopened_file_recovers_dataset_index() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = daos_core::DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        let (cid, s) = daos.cont_create(0, daos_core::ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (mut dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        let rt = H5Runtime::new(&mut sched, 1, &topo.cal);

        let mut rng = simkit::SplitMix64::new(10);
        let mut payloads = Vec::new();
        {
            let (mut h5, s) = H5PosixFile::create(&rt, &mut dfs, 0, "/sim.h5").unwrap();
            exec(&mut sched, s);
            for i in 0..3 {
                let mut data = vec![0u8; 50_000 + i * 1000];
                rng.fill_bytes(&mut data);
                let s = h5
                    .dataset_write(
                        &rt,
                        &mut dfs,
                        &format!("var{i}"),
                        Payload::Bytes(data.clone()),
                    )
                    .unwrap();
                exec(&mut sched, s);
                payloads.push(data);
            }
            let s = h5.close(&rt, &mut dfs).unwrap();
            exec(&mut sched, s);
        }

        // a fresh handle recovers the index from the persisted records
        let (mut h5, s) = H5PosixFile::open(&rt, &mut dfs, 0, "/sim.h5").unwrap();
        exec(&mut sched, s);
        assert_eq!(h5.datasets(), vec!["var0", "var1", "var2"]);
        for (i, expect) in payloads.iter().enumerate() {
            let (got, s) = h5.dataset_read(&rt, &mut dfs, &format!("var{i}")).unwrap();
            exec(&mut sched, s);
            assert_eq!(got.bytes().unwrap(), &expect[..], "var{i}");
        }
        // appending continues past the recovered heap end
        let s = h5
            .dataset_write(&rt, &mut dfs, "var3", Payload::Bytes(vec![9; 100]))
            .unwrap();
        exec(&mut sched, s);
        let (got, s) = h5.dataset_read(&rt, &mut dfs, "var3").unwrap();
        exec(&mut sched, s);
        assert_eq!(got.bytes().unwrap(), &[9u8; 100][..]);
    }

    #[test]
    fn index_entry_pack_round_trip() {
        let e = pack_index_entry("temperature_850hPa", 123456, 789);
        let (name, off, len) = unpack_index_entry(&e).unwrap();
        assert_eq!(name, "temperature_850hPa");
        assert_eq!((off, len), (123456, 789));
        assert_eq!(unpack_index_entry(&[0u8; 64]), None, "empty slot");
    }
}
