//! Metadata stress: the mdtest-style workload (file create / stat /
//! remove storms) on DFUSE-over-DAOS versus Lustre — the "metadata and
//! small I/O" half of the paper's conclusion C4.
//!
//! ```text
//! cargo run --release --example metadata_stress
//! ```

use benchkit::run_phase;
use cluster::{Calibration, ClusterSpec};
use daos_core::{ContainerProps, DaosSystem, DataMode};
use daos_dfs::{Dfs, DfsOpts};
use daos_dfuse::{DfuseMount, DfuseOpts};
use ior_bench::{MdPhase, Mdtest, MdtestConfig};
use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
use simkit::{run, OpId, Scheduler, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn create_rate(dfuse: bool, procs: usize, nodes: usize, cal: &Calibration) -> f64 {
    let mut sched = Scheduler::new();
    sched.set_coalescing(2_000);
    let topo = ClusterSpec::new(8, nodes)
        .with_cal(cal.clone())
        .build(&mut sched);
    let fs: Box<dyn cluster::posix::PosixFs> = if dfuse {
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 8, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let daos = Rc::new(RefCell::new(daos));
        let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        // metadata caching on: lookups of the shared parent directories
        // come from the kernel dentry cache, as in real mdtest runs
        let opts = DfuseOpts {
            metadata_caching: true,
            ..Default::default()
        };
        Box::new(DfuseMount::mount(dfs, &mut sched, opts))
    } else {
        Box::new(LustreSystem::deploy(
            &topo,
            &mut sched,
            8,
            LustreDataMode::Sized,
            StripeOpts::default(),
        ))
    };
    let mut md = Mdtest::new(MdtestConfig::new(procs, nodes, 48), fs);
    let create = run_phase(&mut sched, &mut md);
    // keep the other phases exercised too
    md.set_phase(MdPhase::Stat);
    let _ = run_phase(&mut sched, &mut md);
    md.set_phase(MdPhase::Remove);
    let _ = run_phase(&mut sched, &mut md);
    create.iops()
}

fn main() {
    let cal = Calibration::default();
    println!("mdtest file creates/s, 8 storage servers, growing client load\n");
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "processes", "DFUSE (DAOS)", "Lustre", "ratio"
    );
    for (procs, nodes) in [(64usize, 4usize), (256, 16), (1024, 32)] {
        let daos = create_rate(true, procs, nodes, &cal);
        let lustre = create_rate(false, procs, nodes, &cal);
        println!(
            "{procs:>10} {:>14.1} k/s {:>14.1} k/s {:>10.2}",
            daos / 1e3,
            lustre / 1e3,
            daos / lustre
        );
    }
    println!(
        "\nLustre's single MDS saturates and stays flat; DAOS's metadata is\n\
         served by every engine, so the create rate keeps scaling with the\n\
         client load — the paper's conclusion C4 in one table."
    );
}
