//! The deployed DAOS system: pool + engines + the libdaos-style API.
//!
//! [`DaosSystem`] couples three things:
//!
//! 1. **logical state** — containers, objects, their payloads
//!    ([`crate::data`]), placement ([`crate::pool`]);
//! 2. **service resources** — one RPC/data-processing pipe per engine and
//!    one request-service per target, layered on the [`cluster`]
//!    hardware, plus the pool's fixed-size metadata replica group;
//! 3. **the API** — each operation mutates logical state immediately and
//!    returns a [`Step`] op-chain whose execution models the operation's
//!    time: client software overhead, a network round trip, per-target
//!    request service, shared data movement through NIC/engine/NVMe, and
//!    device latency.
//!
//! Benchmarks submit the returned steps to the scheduler; nothing in this
//! crate talks to the engine directly, which keeps all semantics unit
//! testable without simulation.

use crate::class::ObjectClass;
use crate::container::{Container, ContainerId, ContainerProps, ObjectEntry};
use crate::data::{
    ArrayData, CellAvailability, CsumMismatch, DataError, DataMode, KvData, ObjData,
};
use crate::ec::ErasureCode;
use crate::ledger::{
    content_digest, AckedValue, DurabilityLedger, OracleKind, OracleReport, Violation,
};
use crate::oid::{Oid, FLAG_KV};
use crate::pool::{PoolMap, TargetId};
use crate::rebuild::{pick_replacement, RebuildReport};
use cluster::payload::{Payload, ReadPayload};
use cluster::{units, Calibration, Topology};
use simkit::{ResourceId, Scheduler, Step};
use std::collections::{BTreeMap, BTreeSet};

/// Errors surfaced by the DAOS API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaosError {
    /// Unknown container id.
    NoSuchContainer,
    /// Unknown object id.
    NoSuchObject,
    /// KV operation on an Array object (or vice versa).
    WrongObjectType,
    /// Object class not usable for this object kind (e.g. EC Key-Values).
    InvalidClass,
    /// Data lives on down targets and cannot be served.
    // simlint::terminal_error — data loss is final; no retry can serve it
    Unavailable,
    /// Key not found.
    NoSuchKey,
    /// The operation exceeded its per-op timeout budget (transient:
    /// retry with backoff).
    Timeout,
    /// The addressed target crashed and this client had not yet observed
    /// the failure; the pool map is refreshed and a retry takes the
    /// degraded path (replica fail-over / EC reconstruction).
    TargetDown,
    /// A stored checksum failed verification and the rot exceeds the
    /// class redundancy, so the verified read refuses to serve the
    /// bytes.  Classified transient (a scrub repair or rewrite may heal
    /// the extent between attempts), but when nothing heals it the
    /// retry budget exhausts and the failure surfaces loudly — bad
    /// bytes are never returned.
    BadChecksum,
    /// Generic injected transient failure (fault plans).
    Retriable,
}

impl From<DataError> for DaosError {
    fn from(e: DataError) -> Self {
        match e {
            DataError::Unavailable => DaosError::Unavailable,
        }
    }
}

/// Per-engine service resources.
#[derive(Debug, Clone)]
struct ServerRes {
    /// RPC/data processing pipe of the engine (bytes/s, both directions).
    engine_xfer: ResourceId,
    /// Per-target request service (ops/s).
    tgt_svc: Vec<ResourceId>,
}

/// One planned shard move, addressed by `(container, object, group,
/// member)` so re-planning after a crash overwrites rather than
/// duplicates.  The key orders the pending set deterministically, which
/// makes wave emission (and therefore the replay digest) independent of
/// planning order.
type MoveKey = (u32, Oid, usize, usize);

/// Source/destination/bytes of one planned shard move.
#[derive(Debug, Clone)]
struct MovePlan {
    sources: Vec<TargetId>,
    read_each: f64,
    dst: TargetId,
    write_bytes: f64,
}

/// The background data-migration engine's bookkeeping: planned moves not
/// yet shipped, plus progress counters.  Lives inside [`DaosSystem`] and
/// is therefore replay-visible simulation state: waves pop moves in key
/// order, and every wave is validated against the *current* pool map and
/// layouts, so a crash (and the rebuild it triggers) simply invalidates
/// the stale moves — migration resumes with whatever is still correct.
#[derive(Debug, Clone, Default)]
struct MigrationState {
    pending: BTreeMap<MoveKey, MovePlan>,
    moves_done: usize,
    moves_dropped: usize,
    moved_bytes: f64,
}

/// Progress of the background migration engine
/// ([`DaosSystem::migration_progress`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationProgress {
    /// Moves shipped in completed waves.
    pub moves_done: usize,
    /// Planned moves dropped at wave time because a crash/rebuild made
    /// them stale (object gone, layout remapped, destination down).
    pub moves_dropped: usize,
    /// Logical bytes shipped by completed waves.
    // simlint::dim(bytes)
    pub moved_bytes: f64,
}

impl MigrationProgress {
    /// Publish migration progress into a telemetry registry as
    /// `daos.migration.*` counters recorded at `at`.  Wave activity over
    /// time is already visible through the engine's span-open counters
    /// (`span.migration.wave`); these totals add the dropped-move and
    /// shipped-byte bookkeeping only the migration engine knows.  No-op
    /// on a disabled registry.
    pub fn publish(&self, tel: &mut simkit::Telemetry, at: simkit::SimTime) {
        if !tel.is_enabled() {
            return;
        }
        for (name, value) in [
            ("daos.migration.moves_done", self.moves_done as u64),
            ("daos.migration.moves_dropped", self.moves_dropped as u64),
            // simlint::dim(bytes)
            ("daos.migration.moved_bytes", self.moved_bytes as u64),
        ] {
            let id = tel.counter(name);
            tel.counter_add(id, at, value);
        }
    }
}

/// Outcome of a rebalance planning pass
/// ([`DaosSystem::rebalance_plan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RebalanceReport {
    /// Objects examined across all containers.
    pub objects_scanned: usize,
    /// Shard moves planned (layouts already remapped).
    pub moves_planned: usize,
    /// Logical bytes the planned moves will ship.
    // simlint::dim(bytes)
    pub bytes_planned: f64,
    /// Drained shards left in place because no destination was
    /// available; they are lost when the drain completes.
    pub moves_skipped: usize,
}

/// Which stored copies of each datum are currently bit-rotten.
///
/// The data layer stores one logical copy per chunk/value, so a rot
/// event flips the physical byte **once** and this registry records
/// which replica shards / EC cells the rot notionally hit.  Verified
/// reads and the scrubber recompute checksums to *detect* the flip,
/// then consult the registry to decide repairability: replication
/// repairs while at least one replica is clean, erasure coding while
/// the distinct rotten cells fit within `p`, and plain sharding never.
/// Repair re-flips the registered byte (xor with `0xFF` is an
/// involution), modelling a rewrite from the reconstructed content,
/// and drops the entry.  Every entry therefore corresponds to exactly
/// one still-flipped physical byte — the invariant that makes repair
/// by re-flip sound.
// simlint::sim_state — replay-visible simulation state
#[derive(Debug, Clone, Default)]
struct RotState {
    /// Array rot: `(container, object)` → flipped byte offset → shard
    /// copies hit (replica index, or derived EC data-cell index).
    extents: BTreeMap<(u32, Oid), BTreeMap<u64, BTreeSet<u64>>>,
    /// EC parity rot: `(container, object)` → set of `(chunk offset,
    /// parity cell index)` flips — parity bytes no logical offset
    /// addresses.
    parity: BTreeMap<(u32, Oid), BTreeSet<(u64, u64)>>,
    /// KV rot: `(container, object)` → key → replica copies hit.
    kv: BTreeMap<(u32, Oid), BTreeMap<Vec<u8>, BTreeSet<u64>>>,
}

impl RotState {
    fn touches(&self, key: &(u32, Oid)) -> bool {
        self.extents.contains_key(key) || self.parity.contains_key(key) || self.kv.contains_key(key)
    }
}

/// End-to-end checksum activity counters ([`DaosSystem::csum_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsumStats {
    /// Chunk/value verifications performed (reads, writes, scrubber).
    pub verified: u64,
    /// Rotten shard copies (replica copies / EC cells) detected.
    pub detected: u64,
    /// Rotten shard copies transparently repaired.
    pub repaired: u64,
    /// Bytes rewritten by transparent repair.
    // simlint::dim(bytes)
    pub repaired_bytes: u64,
    /// Verification units whose rot exceeded the class redundancy: the
    /// access fails with [`DaosError::BadChecksum`] instead of serving.
    pub unrepairable: u64,
    /// Corrupt payloads served to clients.  **Must stay zero** — the
    /// verified read path refuses rather than serves; the counter
    /// exists so the `CounterCeiling` SLO rule can witness the
    /// invariant in every run report.
    pub served_corrupt: u64,
}

impl CsumStats {
    /// Publish the checksum counters into a telemetry registry as
    /// `daos.csum.*` counters recorded at `at`.  No-op on a disabled
    /// registry.
    pub fn publish(&self, tel: &mut simkit::Telemetry, at: simkit::SimTime) {
        if !tel.is_enabled() {
            return;
        }
        for (name, value) in [
            ("daos.csum.verified", self.verified),
            ("daos.csum.detected", self.detected),
            ("daos.csum.repaired", self.repaired),
            // simlint::dim(bytes)
            ("daos.csum.repaired_bytes", self.repaired_bytes),
            ("daos.csum.unrepairable", self.unrepairable),
            ("daos.csum.served_corrupt", self.served_corrupt),
        ] {
            let id = tel.counter(name);
            tel.counter_add(id, at, value);
        }
    }
}

/// Progress of the background scrubber ([`DaosSystem::scrub_progress`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Scan units verified (array chunks and KV values).
    pub units_scanned: u64,
    /// Stored bytes the scan read.
    // simlint::dim(bytes)
    pub bytes_scanned: u64,
    /// Rotten copies the scrubber detected (before any read hit them).
    pub detected: u64,
    /// Rotten copies the scrubber repaired.
    pub repaired: u64,
    /// Units whose rot exceeded the class redundancy; left in place for
    /// reads to refuse loudly and the durability oracle to name.
    pub unrepairable: u64,
    /// Waves emitted.
    pub waves: u64,
    /// Full passes completed over the scan domain.
    pub passes: u64,
}

impl ScrubReport {
    /// Publish scrubber progress into a telemetry registry as
    /// `daos.scrub.*` counters recorded at `at`.  No-op on a disabled
    /// registry.
    pub fn publish(&self, tel: &mut simkit::Telemetry, at: simkit::SimTime) {
        if !tel.is_enabled() {
            return;
        }
        for (name, value) in [
            ("daos.scrub.units_scanned", self.units_scanned),
            // simlint::dim(bytes)
            ("daos.scrub.bytes_scanned", self.bytes_scanned),
            ("daos.scrub.detected", self.detected),
            ("daos.scrub.repaired", self.repaired),
            ("daos.scrub.unrepairable", self.unrepairable),
            ("daos.scrub.waves", self.waves),
            ("daos.scrub.passes", self.passes),
        ] {
            let id = tel.counter(name);
            tel.counter_add(id, at, value);
        }
    }
}

/// The background scrubber's bookkeeping: whether a pass is running,
/// the resume cursor, and cumulative progress.  Replay-visible
/// simulation state — the cursor is exactly what makes a pass resume
/// byte-identically after a mid-scrub crash.
// simlint::sim_state — replay-visible simulation state
#[derive(Debug, Clone, Default)]
struct ScrubState {
    active: bool,
    /// Next `(container, object, unit)` to scan; `None` while active
    /// means start from the beginning.
    cursor: Option<(u32, Oid, u64)>,
    report: ScrubReport,
}

/// One unit of scrub work collected by the scan phase.
enum ScrubUnit {
    /// An array chunk and its verification result.
    Chunk(u64, Option<CsumMismatch>),
    /// A KV key and whether its value verified.
    Key(Vec<u8>, bool),
}

/// A deployed DAOS pool with its API.
// simlint::sim_state — replay-visible simulation state
pub struct DaosSystem {
    topo: Topology,
    cal: Calibration,
    pool: PoolMap,
    mode: DataMode,
    containers: Vec<Option<Container>>,
    srv_res: Vec<ServerRes>,
    /// The pool metadata / container service replica group: a fixed-size
    /// service that does NOT scale with the server count.
    pool_md_svc: ResourceId,
    ec_cache: BTreeMap<(u8, u8), ErasureCode>,
    /// Crashed targets ([`DaosSystem::crash_target`]) mapped to the
    /// client nodes that have already observed the failure.  The first
    /// data-path op from each client node touching such a target fails
    /// with [`DaosError::TargetDown`] — modelling the RPC timeout and
    /// pool-map refresh — after which that client uses degraded paths.
    /// Administrative exclusion ([`DaosSystem::exclude_target`]) is
    /// already propagated through the pool map and triggers no error.
    undetected: BTreeMap<TargetId, BTreeSet<usize>>,
    /// Per-server extra completion latency (ns) injected by
    /// delayed-completion faults; applied to every data-path op chain
    /// touching the server's targets.
    extra_delay: BTreeMap<u16, u64>,
    /// Shadow record of acknowledged writes for the durability oracles
    /// ([`DaosSystem::enable_ledger`]).  `None` (the default) costs
    /// nothing; when enabled it is written by the data paths but never
    /// read by them, so it cannot alter any schedule.
    ledger: Option<DurabilityLedger>,
    /// The background data-migration engine (rebalance after server
    /// add/drain).
    migration: MigrationState,
    /// Which stored copies are currently bit-rotten (see [`RotState`]).
    rot: RotState,
    /// End-to-end checksum activity counters.
    csum: CsumStats,
    /// The background scrubber (cursor + progress).
    scrub: ScrubState,
}

impl DaosSystem {
    /// Deploy a pool over the first `servers` nodes of `topo`, creating
    /// the engine service resources in `sched`.
    pub fn deploy(
        topo: &Topology,
        sched: &mut Scheduler,
        servers: usize,
        mode: DataMode,
    ) -> DaosSystem {
        assert!(servers >= 1 && servers <= topo.server_count());
        let cal = topo.cal.clone();
        let srv_res = (0..servers)
            .map(|s| ServerRes {
                engine_xfer: sched.add_resource(format!("daos{s}.engine"), cal.engine_xfer_bw),
                tgt_svc: (0..cal.targets_per_server)
                    .map(|t| sched.add_resource(format!("daos{s}.tgt{t}"), cal.target_svc_iops))
                    .collect(),
            })
            .collect();
        let pool_md_svc = sched.add_resource("daos.pool_md", cal.pool_md_iops);
        DaosSystem {
            topo: topo.clone(),
            pool: PoolMap::new(servers, cal.targets_per_server),
            cal,
            mode,
            containers: Vec::new(),
            srv_res,
            pool_md_svc,
            ec_cache: BTreeMap::new(),
            undetected: BTreeMap::new(),
            extra_delay: BTreeMap::new(),
            ledger: None,
            migration: MigrationState::default(),
            rot: RotState::default(),
            csum: CsumStats::default(),
            scrub: ScrubState::default(),
        }
    }

    /// The pool map (health, placement).
    pub fn pool(&self) -> &PoolMap {
        &self.pool
    }

    /// The hardware topology the pool is deployed on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Data mode the system was deployed with.
    pub fn data_mode(&self) -> DataMode {
        self.mode
    }

    /// Calibration in effect.
    pub fn cal(&self) -> &Calibration {
        &self.cal
    }

    /// Number of engines (server nodes) in the pool.
    pub fn server_count(&self) -> usize {
        self.pool.server_count()
    }

    /// Exclude a target: new placements avoid it and reads of its shards
    /// go degraded (replica fail-over / EC reconstruction).
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn exclude_target(&mut self, t: TargetId) {
        self.pool.exclude(t);
    }

    /// Exclude every target of a server node.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn exclude_server(&mut self, server: u16) {
        self.pool.exclude_server(server);
    }

    /// Reintegrate a target.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn reintegrate_target(&mut self, t: TargetId) {
        self.pool.reintegrate(t);
    }

    /// A target crashes *mid-run* (fault injection): excluded like
    /// [`DaosSystem::exclude_target`], but the failure is initially
    /// **undetected** — the first data-path operation from each client
    /// node that touches the target fails with
    /// [`DaosError::TargetDown`], and only the retry (against the
    /// refreshed pool map) takes the degraded path.
    // simlint::panic_root — fault-handling path: must never panic
    pub fn crash_target(&mut self, t: TargetId) {
        self.pool.exclude(t);
        self.undetected.entry(t).or_default();
    }

    /// A crashed target returns: reintegrated and no longer reported as
    /// newly-down to any client.
    // simlint::panic_root — fault-handling path: must never panic
    pub fn restart_target(&mut self, t: TargetId) {
        self.pool.reintegrate(t);
        self.undetected.remove(&t);
    }

    /// Inject (or with `extra_ns == 0` clear) a per-server completion
    /// delay: every data-path op chain touching one of the server's
    /// targets pays `extra_ns` on top of its modelled cost.  Backs the
    /// delayed-completion fault action.
    // simlint::panic_root — fault-handling path: must never panic
    pub fn set_extra_delay(&mut self, server: u16, extra_ns: u64) {
        if extra_ns == 0 {
            self.extra_delay.remove(&server);
        } else {
            self.extra_delay.insert(server, extra_ns);
        }
    }

    /// Observe crashes: the first op from each client node touching a
    /// crashed-but-undetected target fails once with
    /// [`DaosError::TargetDown`].  Called by every data-path operation
    /// *before* any state mutation, so a retried op re-executes cleanly.
    fn check_detection(&mut self, client: usize, group: &[TargetId]) -> Result<(), DaosError> {
        if self.undetected.is_empty() {
            return Ok(());
        }
        for t in group {
            if let Some(seen) = self.undetected.get_mut(t) {
                if seen.insert(client) {
                    return Err(DaosError::TargetDown);
                }
            }
        }
        Ok(())
    }

    // ---- cost-chain helpers ------------------------------------------------

    fn client_overhead(&self) -> Step {
        Step::delay(self.cal.libdaos_op_ns)
    }

    fn rtt(&self) -> Step {
        Step::delay(self.cal.net_rtt_ns)
    }

    fn dev_for(&self, t: TargetId) -> usize {
        t.target as usize % self.topo.servers[t.server as usize].nvme_w.len()
    }

    /// Request service + data movement + device latency for a write of
    /// `bytes` from `client` to target `t`.
    fn write_to_target(&self, client: usize, t: TargetId, bytes: f64) -> Step {
        let srv = &self.topo.servers[t.server as usize];
        let res = &self.srv_res[t.server as usize];
        let cli = &self.topo.clients[client];
        let dev = self.dev_for(t);
        // small writes land in the engine's write-ahead log (DRAM-backed
        // on these VMs) and skip the bulk device latency
        let lat = if bytes >= self.cal.bulk_io_threshold {
            self.cal.nvme_write_lat_ns
        } else {
            self.cal.small_write_lat_ns
        };
        let lat = lat + self.extra_delay.get(&t.server).copied().unwrap_or(0);
        Step::span(
            "target",
            "write",
            bytes as u64,
            Step::seq([
                self.tgt_request_sized(t, bytes),
                Step::transfer(
                    bytes,
                    [
                        cli.nic_tx,
                        srv.nic_rx,
                        res.engine_xfer,
                        srv.nvme_w[dev],
                        srv.nvme_w_pool,
                    ],
                ),
                Step::delay(lat),
            ]),
        )
    }

    /// Request-service cost at a target.  Small operations contend on
    /// the shared per-target service (the Fig. 2 IOPS ceilings); bulk
    /// transfers, whose service time is negligible against their data
    /// movement, pay it as a fixed delay — halving the simulator's event
    /// count for bandwidth workloads without changing where they
    /// saturate.
    fn tgt_request_sized(&self, t: TargetId, bytes: f64) -> Step {
        if bytes >= self.cal.bulk_io_threshold {
            Step::delay(units::ops_interval_ns(self.cal.target_svc_iops))
        } else {
            Step::transfer(
                1.0,
                [self.srv_res[t.server as usize].tgt_svc[t.target as usize]],
            )
        }
    }

    /// Request service + data movement + device latency for a read of
    /// `bytes` from target `t` to `client`.
    fn read_from_target(&self, client: usize, t: TargetId, bytes: f64) -> Step {
        let srv = &self.topo.servers[t.server as usize];
        let res = &self.srv_res[t.server as usize];
        let cli = &self.topo.clients[client];
        let dev = self.dev_for(t);
        let extra = self.extra_delay.get(&t.server).copied().unwrap_or(0);
        Step::span(
            "target",
            "read",
            bytes as u64,
            Step::seq([
                self.tgt_request_sized(t, bytes),
                Step::delay(self.cal.nvme_read_lat_ns + extra),
                Step::transfer(
                    bytes,
                    [
                        srv.nvme_r[dev],
                        srv.nvme_r_pool,
                        res.engine_xfer,
                        srv.nic_tx,
                        cli.nic_rx,
                    ],
                ),
            ]),
        )
    }

    /// `n` operations against the pool metadata replica group.
    pub fn pool_md_op(&self, n: f64) -> Step {
        Step::seq([self.rtt(), Step::transfer(n, [self.pool_md_svc])])
    }

    // ---- containers ---------------------------------------------------------

    /// Create a container.  A collective over all engines plus a pool
    /// metadata transaction — the cost that makes container-per-process
    /// designs expensive at scale.
    pub fn cont_create(&mut self, _client: usize, props: ContainerProps) -> (ContainerId, Step) {
        let id = ContainerId(self.containers.len() as u32);
        self.containers.push(Some(Container::new(id, props)));
        let collective = self.cal.cont_collective_ns_per_server * self.pool.server_count() as u64;
        let step = Step::span(
            "libdaos",
            "cont_create",
            0,
            Step::seq([
                self.client_overhead(),
                self.pool_md_op(1.0),
                Step::delay(collective),
            ]),
        );
        (id, step)
    }

    /// Open an existing container (pool metadata transaction).
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn cont_open(&mut self, _client: usize, id: ContainerId) -> Result<Step, DaosError> {
        let c = self.cont_mut(id)?;
        c.open_handles += 1;
        Ok(Step::seq([self.client_overhead(), self.pool_md_op(1.0)]))
    }

    /// Close a container handle.
    pub fn cont_close(&mut self, _client: usize, id: ContainerId) -> Result<Step, DaosError> {
        let c = self.cont_mut(id)?;
        c.open_handles = c.open_handles.saturating_sub(1);
        Ok(Step::seq([self.client_overhead(), self.rtt()]))
    }

    /// Destroy a container and all its objects.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn cont_destroy(&mut self, _client: usize, id: ContainerId) -> Result<Step, DaosError> {
        let slot = self
            .containers
            .get_mut(id.0 as usize)
            .ok_or(DaosError::NoSuchContainer)?;
        if slot.take().is_none() {
            return Err(DaosError::NoSuchContainer);
        }
        self.rot.extents.retain(|&(c, _), _| c != id.0);
        self.rot.parity.retain(|&(c, _), _| c != id.0);
        self.rot.kv.retain(|&(c, _), _| c != id.0);
        if let Some(l) = self.ledger.as_mut() {
            l.record_cont_destroy(id);
        }
        Ok(Step::seq([self.client_overhead(), self.pool_md_op(1.0)]))
    }

    /// Take a container snapshot; returns its epoch.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn snapshot_create(
        &mut self,
        _client: usize,
        id: ContainerId,
    ) -> Result<(u64, Step), DaosError> {
        let step = Step::seq([self.client_overhead(), self.pool_md_op(1.0)]);
        let c = self.cont_mut(id)?;
        Ok((c.snapshot(), step))
    }

    /// Destroy a container snapshot.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn snapshot_destroy(
        &mut self,
        _client: usize,
        id: ContainerId,
        epoch: u64,
    ) -> Result<Step, DaosError> {
        let step = Step::seq([self.client_overhead(), self.pool_md_op(1.0)]);
        let c = self.cont_mut(id)?;
        if c.snapshot_destroy(epoch) {
            Ok(step)
        } else {
            Err(DaosError::NoSuchKey)
        }
    }

    /// Snapshot epochs of a container.
    pub fn snapshot_list(&self, id: ContainerId) -> Result<Vec<u64>, DaosError> {
        Ok(self.cont(id)?.snapshots.clone())
    }

    fn cont(&self, id: ContainerId) -> Result<&Container, DaosError> {
        self.containers
            .get(id.0 as usize)
            .and_then(|c| c.as_ref())
            .ok_or(DaosError::NoSuchContainer)
    }

    fn cont_mut(&mut self, id: ContainerId) -> Result<&mut Container, DaosError> {
        self.containers
            .get_mut(id.0 as usize)
            .and_then(|c| c.as_mut())
            .ok_or(DaosError::NoSuchContainer)
    }

    // simlint::allow(hot-alloc) — clones the per-class codec config at object-create time only
    fn ec_for(&mut self, class: ObjectClass) -> Option<ErasureCode> {
        match class {
            ObjectClass::ErasureCoded { k, p } => Some(
                self.ec_cache
                    .entry((k, p))
                    .or_insert_with(|| ErasureCode::new(k as usize, p as usize))
                    .clone(),
            ),
            _ => None,
        }
    }

    // ---- objects --------------------------------------------------------------

    /// Create an Array object.  Object creation is client-local in DAOS:
    /// the OID is generated and the layout computed without any RPC.
    // simlint::allow(hot-alloc) — create-time layout ownership; runs once per object, not per I/O
    pub fn array_create(
        &mut self,
        _client: usize,
        cid: ContainerId,
        class: ObjectClass,
        chunk_size: u64,
    ) -> Result<(Oid, Step), DaosError> {
        let pool = self.pool.clone();
        let c = self.cont_mut(cid)?;
        let oid = c.alloc.next(class, 0);
        let layout = pool.layout_salted(&oid, class, cid.0 as u64 + 1);
        c.objects.insert(
            oid,
            ObjectEntry {
                layout,
                data: ObjData::Array(ArrayData::new(chunk_size)),
            },
        );
        Ok((oid, self.client_overhead()))
    }

    /// Create a Key-Value object.
    // simlint::allow(hot-alloc) — create-time layout ownership; runs once per object, not per I/O
    pub fn kv_create(
        &mut self,
        _client: usize,
        cid: ContainerId,
        class: ObjectClass,
    ) -> Result<(Oid, Step), DaosError> {
        if !class.supports_kv() {
            return Err(DaosError::InvalidClass);
        }
        let pool = self.pool.clone();
        let c = self.cont_mut(cid)?;
        let oid = c.alloc.next(class, FLAG_KV);
        let layout = pool.layout_salted(&oid, class, cid.0 as u64 + 1);
        c.objects.insert(
            oid,
            ObjectEntry {
                layout,
                data: ObjData::Kv(KvData::new()),
            },
        );
        Ok((oid, self.client_overhead()))
    }

    /// Remove an object entirely (`daos_obj_punch`).
    pub fn obj_punch(
        &mut self,
        _client: usize,
        cid: ContainerId,
        oid: Oid,
    ) -> Result<Step, DaosError> {
        let c = self.cont_mut(cid)?;
        c.objects.remove(&oid).ok_or(DaosError::NoSuchObject)?;
        let key = (cid.0, oid);
        self.rot.extents.remove(&key);
        self.rot.parity.remove(&key);
        self.rot.kv.remove(&key);
        if let Some(l) = self.ledger.as_mut() {
            l.record_punch(cid, oid);
        }
        Ok(Step::seq([self.client_overhead(), self.rtt()]))
    }

    /// Number of live objects in a container.
    pub fn object_count(&self, cid: ContainerId) -> Result<usize, DaosError> {
        Ok(self.cont(cid)?.object_count())
    }

    // ---- Key-Value API -----------------------------------------------------------

    /// Insert/update a key.  The value lands on the dkey's shard group;
    /// replicated classes write every replica in parallel.
    // simlint::allow(hot-alloc) — op construction: the owned key/value ride the op chain; arena-allocated chains are ROADMAP item 2
    pub fn kv_put(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
        value: Payload,
    ) -> Result<Step, DaosError> {
        let bytes = value.len() as f64;
        let group: Vec<TargetId> = self
            .obj(cid, oid)?
            .layout
            .group_for(dkey_hash(key))
            .to_vec();
        self.check_detection(client, &group)?;
        // degraded writes land on the servable members only (drained and
        // reintegrating targets still accept updates for shards they
        // hold); a fully-down group cannot accept the update
        let up: Vec<TargetId> = group
            .iter()
            .copied()
            .filter(|&t| self.pool.is_servable(t))
            .collect();
        if up.is_empty() {
            return Err(DaosError::Unavailable);
        }
        // clone for the ledger before the payload moves into the store
        let acked = self.ledger.is_some().then(|| value.clone());
        let entry = self.obj_mut(cid, oid)?;
        match &mut entry.data {
            ObjData::Kv(kv) => kv.put(key, value),
            ObjData::Array(_) => return Err(DaosError::WrongObjectType),
        }
        // the value (and its checksum) were replaced wholesale: latent
        // rot in the old value is healed, so its registry entry must go
        // before it could mis-direct a later repair re-flip
        self.rot_clear_kv(cid, oid, key);
        if let (Some(l), Some(v)) = (self.ledger.as_mut(), acked) {
            l.record_kv_put(cid, oid, key, &v);
        }
        let writes = up
            .iter()
            .map(|&t| self.write_to_target(client, t, bytes.max(64.0)))
            .collect::<Vec<_>>();
        Ok(Step::span(
            "libdaos",
            "kv_put",
            bytes as u64,
            Step::seq([self.client_overhead(), self.rtt(), Step::par(writes)]),
        ))
    }

    /// Fetch a key's value.  Reads from the first up replica.
    // simlint::allow(hot-alloc) — op construction: the owned key rides the op chain; arena-allocated chains are ROADMAP item 2
    pub fn kv_get(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
    ) -> Result<(ReadPayload, Step), DaosError> {
        let pool = self.pool.clone();
        let group: Vec<TargetId> = self
            .obj(cid, oid)?
            .layout
            .group_for(dkey_hash(key))
            .to_vec();
        self.check_detection(client, &group)?;
        // verified read: recompute the stored value checksum and
        // transparently repair rot the replication still covers; rot on
        // every replica refuses loudly instead of serving bad bytes
        let repair = self.kv_verify_repair(cid, oid, key, &group)?;
        let entry = self.obj(cid, oid)?;
        let value = match &entry.data {
            ObjData::Kv(kv) => kv.get(key).ok_or(DaosError::NoSuchKey)?,
            ObjData::Array(_) => return Err(DaosError::WrongObjectType),
        };
        let read = match value {
            Payload::Bytes(b) => ReadPayload::Bytes(b.clone()),
            Payload::Sized(n) => ReadPayload::Sized(*n),
        };
        let t = group
            .iter()
            .copied()
            .find(|&t| pool.is_servable(t))
            .ok_or(DaosError::Unavailable)?;
        let bytes = (read.len() as f64).max(64.0);
        let step = Step::span(
            "libdaos",
            "kv_get",
            read.len(),
            Step::seq([
                self.client_overhead(),
                self.rtt(),
                repair,
                self.read_from_target(client, t, bytes),
            ]),
        );
        Ok((read, step))
    }

    /// Remove a key.
    // simlint::allow(hot-alloc) — op construction: the owned key rides the op chain; arena-allocated chains are ROADMAP item 2
    pub fn kv_remove(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
    ) -> Result<Step, DaosError> {
        let group: Vec<TargetId> = self
            .obj(cid, oid)?
            .layout
            .group_for(dkey_hash(key))
            .to_vec();
        self.check_detection(client, &group)?;
        let up: Vec<TargetId> = group
            .iter()
            .copied()
            .filter(|&t| self.pool.is_servable(t))
            .collect();
        if up.is_empty() {
            return Err(DaosError::Unavailable);
        }
        let entry = self.obj_mut(cid, oid)?;
        let existed = match &mut entry.data {
            ObjData::Kv(kv) => kv.remove(key),
            ObjData::Array(_) => return Err(DaosError::WrongObjectType),
        };
        if !existed {
            return Err(DaosError::NoSuchKey);
        }
        self.rot_clear_kv(cid, oid, key);
        if let Some(l) = self.ledger.as_mut() {
            l.record_kv_remove(cid, oid, key);
        }
        let ops = up
            .iter()
            .map(|&t| self.write_to_target(client, t, 64.0))
            .collect::<Vec<_>>();
        Ok(Step::span(
            "libdaos",
            "kv_remove",
            0,
            Step::seq([self.client_overhead(), self.rtt(), Step::par(ops)]),
        ))
    }

    /// List keys with a prefix.  One round trip per shard group plus the
    /// key bytes off one target of each group.
    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    pub fn kv_list(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        prefix: &[u8],
    ) -> Result<(Vec<Vec<u8>>, Step), DaosError> {
        let pool = self.pool.clone();
        let entry = self.obj(cid, oid)?;
        let keys = match &entry.data {
            ObjData::Kv(kv) => kv.list(prefix),
            ObjData::Array(_) => return Err(DaosError::WrongObjectType),
        };
        let key_bytes: f64 = keys.iter().map(|k| k.len() as f64).sum::<f64>().max(64.0);
        let groups = entry.layout.groups.clone();
        let per_group_bytes = key_bytes / groups.len() as f64;
        let reads = groups
            .iter()
            .filter_map(|g| g.iter().copied().find(|&t| pool.is_servable(t)))
            .map(|t| self.read_from_target(client, t, per_group_bytes))
            .collect::<Vec<_>>();
        let step = Step::span(
            "libdaos",
            "kv_list",
            key_bytes as u64,
            Step::seq([self.client_overhead(), self.rtt(), Step::par(reads)]),
        );
        Ok((keys, step))
    }

    // ---- Array API -------------------------------------------------------------

    /// Write `payload` at `offset`.  Chunks map to shard groups by chunk
    /// index; replication writes every replica, erasure coding writes
    /// `k + p` cells of `chunk/k` bytes each (plus client-side encode
    /// time) — the mechanics behind the paper's ½ and ⅔ redundancy
    /// write bandwidths.
    // simlint::allow(hot-alloc) — op construction: the payload clone rides the op chain; arena-allocated chains are ROADMAP item 2
    pub fn array_write(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        payload: Payload,
    ) -> Result<Step, DaosError> {
        let mode = self.mode;
        let len = payload.len();
        if len == 0 {
            return Ok(Step::Noop);
        }
        let entry = self.obj(cid, oid)?;
        let layout = entry.layout.clone();
        let class = layout.class;
        let ec = self.ec_for(class);
        // group index -> bytes written to that group
        let group_bytes = {
            let entry = self.obj(cid, oid)?;
            let arr = match &entry.data {
                ObjData::Array(a) => a,
                ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
            };
            let cs = arr.chunk_size();
            let mut gb: BTreeMap<usize, f64> = BTreeMap::new();
            for chunk in arr.chunks_in_range(offset, len) {
                let c_start = chunk * cs;
                let c_end = c_start + cs;
                let seg = (offset + len).min(c_end) - offset.max(c_start);
                *gb.entry(layout.group_index(chunk_dkey_hash(chunk)))
                    .or_default() += seg as f64;
            }
            gb
        };
        // fault detection and write availability, before the mutation:
        // a failing write must leave the store untouched so a retry
        // re-executes cleanly
        for &g in group_bytes.keys() {
            self.check_detection(client, &layout.groups[g])?;
        }
        for &g in group_bytes.keys() {
            let group = &layout.groups[g];
            let up = group.iter().filter(|&&t| self.pool.is_servable(t)).count();
            let writable = match class {
                ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                    self.pool.is_servable(group[0])
                }
                ObjectClass::Replicated { .. } => up >= 1,
                ObjectClass::ErasureCoded { k, .. } => up >= k as usize,
            };
            if !writable {
                return Err(DaosError::Unavailable);
            }
        }
        // verified read-modify-write: a partially-overwritten chunk
        // folds its existing bytes into the new chunk, so those bytes
        // must verify (and be repaired) first — rot beyond redundancy
        // fails the write here, before any mutation.  Fully-covered
        // chunks are replaced wholesale, which heals latent rot.
        let repair = self.array_prewrite_integrity(cid, oid, offset, len)?;
        // apply the mutation
        {
            let entry = self.obj_mut(cid, oid)?;
            match &mut entry.data {
                ObjData::Array(a) => a.write(offset, &payload, mode, ec.as_ref()),
                ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
            }
        }
        if let Some(l) = self.ledger.as_mut() {
            l.record_array_write(cid, oid, offset, &payload);
        }
        // build the cost chain
        let mut group_steps = Vec::with_capacity(group_bytes.len());
        let mut encode_bytes = 0.0;
        for (g, bytes) in group_bytes {
            let group = &layout.groups[g];
            match class {
                ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                    group_steps.push(self.write_to_target(client, group[0], bytes));
                }
                ObjectClass::Replicated { .. } => {
                    // degraded mode: down replicas receive nothing until
                    // rebuild re-protects the group
                    let writes = group
                        .iter()
                        .filter(|&&t| self.pool.is_servable(t))
                        .map(|&t| self.write_to_target(client, t, bytes))
                        .collect::<Vec<_>>();
                    group_steps.push(Step::par(writes));
                }
                ObjectClass::ErasureCoded { k, .. } => {
                    encode_bytes += bytes;
                    let cell = bytes / k as f64;
                    let writes = group
                        .iter()
                        .filter(|&&t| self.pool.is_servable(t))
                        .map(|&t| self.write_to_target(client, t, cell))
                        .collect::<Vec<_>>();
                    group_steps.push(Step::par(writes));
                }
            }
        }
        let encode = if encode_bytes > 0.0 {
            Step::delay(units::secs_to_ns(encode_bytes / self.cal.ec_encode_bw))
        } else {
            Step::Noop
        };
        Ok(Step::span(
            "libdaos",
            "array_write",
            len,
            Step::seq([
                self.client_overhead(),
                encode,
                self.rtt(),
                repair,
                Step::par(group_steps),
            ]),
        ))
    }

    /// Read `len` bytes at `offset`.  Replicated chunks fail over to an
    /// up replica; erasure-coded chunks with lost cells read `k`
    /// surviving cells and pay a reconstruction delay.
    // simlint::allow(hot-alloc) — op construction plus degraded-path shard selection; per submitted op, not per engine event
    pub fn array_read(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), DaosError> {
        if len == 0 {
            return Ok((ReadPayload::Sized(0), Step::Noop));
        }
        // fault detection: observe crashes on every group this range
        // touches before serving anything
        if !self.undetected.is_empty() {
            let touched: Vec<Vec<TargetId>> = {
                let entry = self.obj(cid, oid)?;
                match &entry.data {
                    ObjData::Array(a) => a
                        .chunks_in_range(offset, len)
                        .map(|c| entry.layout.group_for(chunk_dkey_hash(c)).to_vec())
                        .collect(),
                    ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
                }
            };
            for g in &touched {
                self.check_detection(client, g)?;
            }
        }
        // verified read: recompute stored checksums over the touched
        // chunks and transparently repair what the redundancy still
        // covers; rot beyond redundancy refuses loudly instead of
        // serving bad bytes
        let repair = self.array_verify_repair(cid, oid, offset, len)?;
        let mode = self.mode;
        let pool = self.pool.clone();
        let entry = self.obj(cid, oid)?;
        let layout = entry.layout.clone();
        let class = layout.class;
        let ec = self.ec_for(class);
        let entry = self.obj(cid, oid)?;
        let arr = match &entry.data {
            ObjData::Array(a) => a,
            ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
        };
        let cs = arr.chunk_size();
        // availability of a chunk's group, as the data layer sees it
        let avail = |chunk: u64| -> CellAvailability {
            let group = layout.group_for(chunk_dkey_hash(chunk));
            match class {
                ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                    if pool.is_servable(group[0]) {
                        CellAvailability::All
                    } else {
                        CellAvailability::Unavailable
                    }
                }
                ObjectClass::Replicated { .. } => {
                    if group.iter().any(|&t| pool.is_servable(t)) {
                        CellAvailability::All
                    } else {
                        CellAvailability::Unavailable
                    }
                }
                ObjectClass::ErasureCoded { .. } => {
                    CellAvailability::Mask(group.iter().map(|&t| pool.is_servable(t)).collect())
                }
            }
        };
        let data = arr.read(offset, len, mode, ec.as_ref(), &avail)?;
        // cost: per touched group, read bytes from the serving target(s)
        let mut gb: BTreeMap<usize, f64> = BTreeMap::new();
        for chunk in arr.chunks_in_range(offset, len) {
            let c_start = chunk * cs;
            let c_end = c_start + cs;
            let seg = (offset + len).min(c_end) - offset.max(c_start);
            *gb.entry(layout.group_index(chunk)).or_default() += seg as f64;
        }
        let mut group_steps = Vec::with_capacity(gb.len());
        let mut decode_bytes = 0.0;
        for (g, bytes) in gb {
            let group = &layout.groups[g];
            match class {
                ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                    group_steps.push(self.read_from_target(client, group[0], bytes));
                }
                ObjectClass::Replicated { .. } => {
                    let t = group
                        .iter()
                        .copied()
                        .find(|&t| pool.is_servable(t))
                        .ok_or(DaosError::Unavailable)?;
                    group_steps.push(self.read_from_target(client, t, bytes));
                }
                ObjectClass::ErasureCoded { k, .. } => {
                    let k = k as usize;
                    let data_targets = &group[..k];
                    let healthy = data_targets.iter().all(|&t| pool.is_servable(t));
                    let cell = bytes / k as f64;
                    if healthy {
                        let reads = data_targets
                            .iter()
                            .map(|&t| self.read_from_target(client, t, cell))
                            .collect::<Vec<_>>();
                        group_steps.push(Step::par(reads));
                    } else {
                        // degraded: read k surviving cells, reconstruct
                        let survivors: Vec<TargetId> = group
                            .iter()
                            .copied()
                            .filter(|&t| pool.is_servable(t))
                            .take(k)
                            .collect();
                        if survivors.len() < k {
                            return Err(DaosError::Unavailable);
                        }
                        decode_bytes += bytes;
                        let reads = survivors
                            .iter()
                            .map(|&t| self.read_from_target(client, t, cell))
                            .collect::<Vec<_>>();
                        group_steps.push(Step::par(reads));
                    }
                }
            }
        }
        let decode = if decode_bytes > 0.0 {
            Step::delay(units::secs_to_ns(decode_bytes / self.cal.ec_encode_bw))
        } else {
            Step::Noop
        };
        let step = Step::span(
            "libdaos",
            "array_read",
            len,
            Step::seq([
                self.client_overhead(),
                self.rtt(),
                repair,
                Step::par(group_steps),
                decode,
            ]),
        );
        Ok((data, step))
    }

    /// Query the array size (highest written byte + 1).  Costs a round
    /// trip and a request-service op — exactly the per-read overhead
    /// Field I/O pays and fdb-hammer avoids (§III-B).
    // simlint::allow(hot-alloc) — clones the object handle for the metadata op chain
    pub fn array_get_size(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
    ) -> Result<(u64, Step), DaosError> {
        let pool = self.pool.clone();
        let entry = self.obj(cid, oid)?;
        let size = match &entry.data {
            ObjData::Array(a) => a.size(),
            ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
        };
        let t = entry
            .layout
            .groups
            .iter()
            .flat_map(|g| g.iter().copied())
            .find(|&t| pool.is_servable(t))
            .ok_or(DaosError::Unavailable)?;
        let step = Step::span(
            "libdaos",
            "array_get_size",
            0,
            Step::seq([
                self.client_overhead(),
                self.rtt(),
                self.read_from_target(client, t, 64.0),
            ]),
        );
        Ok((size, step))
    }

    /// Truncate/extend an array.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn array_set_size(
        &mut self,
        client: usize,
        cid: ContainerId,
        oid: Oid,
        size: u64,
    ) -> Result<Step, DaosError> {
        let entry = self.obj_mut(cid, oid)?;
        let t = entry.layout.groups[0][0];
        let cs = match &mut entry.data {
            ObjData::Array(a) => {
                a.set_size(size);
                a.chunk_size()
            }
            ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
        };
        // truncation drops whole chunks; their rot entries must go with
        // them (the registry only ever names still-flipped bytes)
        let cut = size.div_ceil(cs) * cs;
        let key = (cid.0, oid);
        if let Some(m) = self.rot.extents.get_mut(&key) {
            m.retain(|&o, _| o < cut);
            if m.is_empty() {
                self.rot.extents.remove(&key);
            }
        }
        if let Some(s) = self.rot.parity.get_mut(&key) {
            s.retain(|&(o, _)| o < cut);
            if s.is_empty() {
                self.rot.parity.remove(&key);
            }
        }
        if let Some(l) = self.ledger.as_mut() {
            l.record_truncate(cid, oid, size);
        }
        let step = Step::span(
            "libdaos",
            "array_set_size",
            0,
            Step::seq([
                self.client_overhead(),
                self.rtt(),
                self.write_to_target(client, t, 64.0),
            ]),
        );
        Ok(step)
    }

    // ---- container attributes -----------------------------------------------

    /// Set a user attribute on a container (`daos cont set-attr`): one
    /// pool-metadata transaction.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn cont_set_attr(
        &mut self,
        _client: usize,
        id: ContainerId,
        name: &str,
        value: &[u8],
    ) -> Result<Step, DaosError> {
        let step = Step::seq([self.client_overhead(), self.pool_md_op(1.0)]);
        let c = self.cont_mut(id)?;
        c.attrs.insert(name.to_string(), value.to_vec());
        Ok(step)
    }

    /// Read a user attribute.
    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    pub fn cont_get_attr(
        &mut self,
        _client: usize,
        id: ContainerId,
        name: &str,
    ) -> Result<(Vec<u8>, Step), DaosError> {
        let step = Step::seq([self.client_overhead(), self.pool_md_op(1.0)]);
        let c = self.cont(id)?;
        let v = c.attrs.get(name).cloned().ok_or(DaosError::NoSuchKey)?;
        Ok((v, step))
    }

    /// List a container's user attribute names.
    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    pub fn cont_list_attrs(
        &mut self,
        _client: usize,
        id: ContainerId,
    ) -> Result<(Vec<String>, Step), DaosError> {
        let step = Step::seq([self.client_overhead(), self.pool_md_op(1.0)]);
        let c = self.cont(id)?;
        Ok((c.attrs.keys().cloned().collect(), step))
    }

    /// Enumerate a container's object ids (`daos cont list-objects`):
    /// one request-service op per engine holding object metadata.
    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    pub fn obj_list(
        &mut self,
        client: usize,
        cid: ContainerId,
    ) -> Result<(Vec<Oid>, Step), DaosError> {
        let servers = self.pool.server_count();
        let reads: Vec<Step> = (0..servers)
            .map(|s| {
                self.read_from_target(
                    client,
                    TargetId {
                        server: s as u16,
                        target: 0,
                    },
                    256.0,
                )
            })
            .collect();
        let c = self.cont(cid)?;
        let mut oids: Vec<Oid> = c.objects.keys().copied().collect();
        oids.sort();
        Ok((
            oids,
            Step::seq([self.client_overhead(), self.rtt(), Step::par(reads)]),
        ))
    }

    // ---- end-to-end data integrity ----------------------------------------------

    /// Checksum activity counters so far ([`CsumStats::publish`] for
    /// telemetry).
    pub fn csum_stats(&self) -> CsumStats {
        self.csum
    }

    /// Verify a KV value's stored checksum and transparently repair rot
    /// the replication still covers.  Returns the repair cost step
    /// ([`Step::Noop`] when the value is clean or absent) or
    /// [`DaosError::BadChecksum`] when the rot exceeds redundancy.
    // simlint::panic_root — integrity path runs under injected faults: must never panic
    fn kv_verify_repair(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
        group: &[TargetId],
    ) -> Result<Step, DaosError> {
        let verdict = {
            let entry = self.obj(cid, oid)?;
            match &entry.data {
                ObjData::Kv(kv) => kv.verify(key),
                ObjData::Array(_) => return Err(DaosError::WrongObjectType),
            }
        };
        match verdict {
            None => Ok(Step::Noop),
            Some(true) => {
                self.csum.verified += 1;
                Ok(Step::Noop)
            }
            Some(false) => {
                self.csum.verified += 1;
                self.repair_kv_rot(cid, oid, key, group)
            }
        }
    }

    /// Repair a KV value whose checksum failed: re-flip the registered
    /// rot (the xor involution restores the original byte, modelling a
    /// rewrite from a clean replica) and charge the replica-to-replica
    /// copy; refuse with [`DaosError::BadChecksum`] when every replica
    /// is rotten or the damage is unknown to the registry.
    // simlint::panic_root — integrity path runs under injected faults: must never panic
    // simlint::allow(hot-alloc) — repair path: runs only when rot was detected, not per I/O
    fn repair_kv_rot(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
        group: &[TargetId],
    ) -> Result<Step, DaosError> {
        let rkey = (cid.0, oid);
        let rotten: BTreeSet<u64> = self
            .rot
            .kv
            .get(&rkey)
            .and_then(|m| m.get(key))
            .cloned()
            .unwrap_or_default();
        self.csum.detected += rotten.len().max(1) as u64;
        if rotten.is_empty() || rotten.len() >= group.len() {
            self.csum.unrepairable += 1;
            return Err(DaosError::BadChecksum);
        }
        let bytes = {
            let entry = self.obj_mut(cid, oid)?;
            match &mut entry.data {
                ObjData::Kv(kv) => {
                    kv.corrupt_value(key);
                    kv.get(key).map(|v| v.len()).unwrap_or(0)
                }
                ObjData::Array(_) => return Err(DaosError::WrongObjectType),
            }
        };
        self.rot_clear_kv(cid, oid, key);
        self.csum.repaired += rotten.len() as u64;
        self.csum.repaired_bytes += bytes * rotten.len() as u64;
        // cost: a clean replica feeds a rewrite of each rotten one
        let src = group
            .iter()
            .enumerate()
            .find(|(i, t)| !rotten.contains(&(*i as u64)) && self.pool.is_servable(**t))
            .map(|(_, &t)| t);
        let per_copy = (bytes as f64).max(64.0);
        let moves: Vec<Step> = src
            .map(|src| {
                rotten
                    .iter()
                    .map(|&r| {
                        let dst = group[r as usize % group.len()];
                        self.rebuild_move(&[src], per_copy, dst, per_copy)
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(repair_span(bytes * rotten.len() as u64, moves))
    }

    /// Verify stored checksums over every chunk `[offset, offset+len)`
    /// touches and transparently repair what the redundancy covers.
    // simlint::panic_root — integrity path runs under injected faults: must never panic
    fn array_verify_repair(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        len: u64,
    ) -> Result<Step, DaosError> {
        let (checked, bad) = {
            let entry = self.obj(cid, oid)?;
            let a = match &entry.data {
                ObjData::Array(a) => a,
                ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
            };
            let checked = a
                .chunks_in_range(offset, len)
                .filter(|&c| a.chunk_written(c))
                .count() as u64;
            (checked, a.verify_range(offset, len))
        };
        self.csum.verified += checked;
        if bad.is_empty() {
            return Ok(Step::Noop);
        }
        self.repair_array_rot(cid, oid, &bad)
    }

    /// Pre-write verification: partially-overwritten chunks fold their
    /// existing bytes into the new chunk, so they must verify (and be
    /// repaired) first; fully-covered chunks are replaced wholesale,
    /// which heals latent rot — their registry entries are dropped so a
    /// later repair cannot re-flip fresh bytes.
    // simlint::panic_root — integrity path runs under injected faults: must never panic
    fn array_prewrite_integrity(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        len: u64,
    ) -> Result<Step, DaosError> {
        let (cs, full, checked, bad) = {
            let entry = self.obj(cid, oid)?;
            let a = match &entry.data {
                ObjData::Array(a) => a,
                ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
            };
            let cs = a.chunk_size();
            let mut full: BTreeSet<u64> = BTreeSet::new();
            let mut checked = 0u64;
            let mut bad = Vec::new();
            for c in a.chunks_in_range(offset, len) {
                let lo = c * cs;
                if offset <= lo && offset + len >= lo + cs {
                    full.insert(c);
                } else if a.chunk_written(c) {
                    checked += 1;
                    if let Some(mm) = a.verify_chunk(c) {
                        bad.push(mm);
                    }
                }
            }
            (cs, full, checked, bad)
        };
        self.csum.verified += checked;
        let repair = if bad.is_empty() {
            Step::Noop
        } else {
            self.repair_array_rot(cid, oid, &bad)?
        };
        if !full.is_empty() {
            let rkey = (cid.0, oid);
            if let Some(m) = self.rot.extents.get_mut(&rkey) {
                m.retain(|&o, _| !full.contains(&(o / cs)));
                if m.is_empty() {
                    self.rot.extents.remove(&rkey);
                }
            }
            if let Some(s) = self.rot.parity.get_mut(&rkey) {
                s.retain(|&(o, _)| !full.contains(&(o / cs)));
                if s.is_empty() {
                    self.rot.parity.remove(&rkey);
                }
            }
        }
        Ok(repair)
    }

    /// Repair rotten array chunks: re-flip every registered flip
    /// (restoring the bytes the surviving redundancy reconstructs),
    /// clear the registry, and charge the reconstruction copies through
    /// the rebuild machinery.  Refuses with [`DaosError::BadChecksum`]
    /// when a chunk's rot exceeds its class redundancy — the caller
    /// must not serve (or fold in) its bytes.
    // simlint::panic_root — integrity path runs under injected faults: must never panic
    // simlint::allow(hot-alloc) — repair path: runs only when rot was detected, not per I/O
    fn repair_array_rot(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        mismatches: &[CsumMismatch],
    ) -> Result<Step, DaosError> {
        let (layout, cs) = {
            let entry = self.obj(cid, oid)?;
            let cs = match &entry.data {
                ObjData::Array(a) => a.chunk_size(),
                ObjData::Kv(_) => return Err(DaosError::WrongObjectType),
            };
            (entry.layout.clone(), cs)
        };
        let class = layout.class;
        let ec = self.ec_for(class);
        let rkey = (cid.0, oid);
        let mut moves: Vec<Step> = Vec::new();
        let mut span_bytes = 0u64;
        for mm in mismatches {
            let chunk = mm.chunk;
            let lo = chunk * cs;
            let group = layout.group_for(chunk_dkey_hash(chunk)).to_vec();
            let flips: Vec<u64> = self
                .rot
                .extents
                .get(&rkey)
                .map(|m| m.range(lo..lo + cs).map(|(&o, _)| o).collect())
                .unwrap_or_default();
            let parity_flips: Vec<(u64, u64)> = self
                .rot
                .parity
                .get(&rkey)
                .map(|s| {
                    s.iter()
                        .copied()
                        .filter(|&(o, _)| o / cs == chunk)
                        .collect()
                })
                .unwrap_or_default();
            // rotten copy indices: EC trusts the recomputed per-cell
            // verdict; replication derives them from the registry
            let rotten: BTreeSet<u64> = match class {
                ObjectClass::ErasureCoded { .. } => mm.cells.iter().map(|&c| c as u64).collect(),
                _ => self
                    .rot
                    .extents
                    .get(&rkey)
                    .map(|m| {
                        m.range(lo..lo + cs)
                            .flat_map(|(_, s)| s.iter().copied())
                            .collect()
                    })
                    .unwrap_or_default(),
            };
            self.csum.detected += rotten.len().max(1) as u64;
            let known = !flips.is_empty() || !parity_flips.is_empty();
            let repairable = known
                && match class {
                    ObjectClass::Sharded(_) | ObjectClass::ShardedMax => false,
                    ObjectClass::Replicated { .. } => {
                        !rotten.is_empty() && rotten.len() < group.len()
                    }
                    ObjectClass::ErasureCoded { p, .. } => rotten.len() <= p as usize,
                };
            if !repairable {
                self.csum.unrepairable += 1;
                return Err(DaosError::BadChecksum);
            }
            {
                let entry = self.obj_mut(cid, oid)?;
                if let ObjData::Array(a) = &mut entry.data {
                    for &o in &flips {
                        a.corrupt_at(o);
                    }
                    if let Some(ec) = ec.as_ref() {
                        for &(o, pi) in &parity_flips {
                            a.corrupt_parity_at(o, pi as usize, ec);
                        }
                    }
                    debug_assert!(a.verify_chunk(chunk).is_none(), "repair left chunk rotten");
                }
            }
            if let Some(m) = self.rot.extents.get_mut(&rkey) {
                for o in &flips {
                    m.remove(o);
                }
                if m.is_empty() {
                    self.rot.extents.remove(&rkey);
                }
            }
            if let Some(s) = self.rot.parity.get_mut(&rkey) {
                for pf in &parity_flips {
                    s.remove(pf);
                }
                if s.is_empty() {
                    self.rot.parity.remove(&rkey);
                }
            }
            self.csum.repaired += rotten.len() as u64;
            // cost: read enough clean copies, rewrite each rotten shard
            match class {
                ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {}
                ObjectClass::Replicated { .. } => {
                    let src = group
                        .iter()
                        .enumerate()
                        .find(|(i, t)| !rotten.contains(&(*i as u64)) && self.pool.is_servable(**t))
                        .map(|(_, &t)| t);
                    if let Some(src) = src {
                        for &r in &rotten {
                            let dst = group[r as usize % group.len()];
                            moves.push(self.rebuild_move(&[src], cs as f64, dst, cs as f64));
                            self.csum.repaired_bytes += cs;
                            span_bytes += cs;
                        }
                    }
                }
                ObjectClass::ErasureCoded { k, .. } => {
                    let k = k as usize;
                    let cell_bytes = cs.div_ceil(k as u64);
                    let sources: Vec<TargetId> = group
                        .iter()
                        .enumerate()
                        .filter(|(i, t)| {
                            !rotten.contains(&(*i as u64)) && self.pool.is_servable(**t)
                        })
                        .map(|(_, &t)| t)
                        .take(k)
                        .collect();
                    if sources.len() == k {
                        for &r in &rotten {
                            let dst = group[r as usize % group.len()];
                            moves.push(self.rebuild_move(
                                &sources,
                                cell_bytes as f64,
                                dst,
                                cell_bytes as f64,
                            ));
                            self.csum.repaired_bytes += cell_bytes;
                            span_bytes += cell_bytes;
                        }
                    }
                }
            }
        }
        Ok(repair_span(span_bytes, moves))
    }

    fn rot_clear_kv(&mut self, cid: ContainerId, oid: Oid, key: &[u8]) {
        if let Some(m) = self.rot.kv.get_mut(&(cid.0, oid)) {
            m.remove(key);
            if m.is_empty() {
                self.rot.kv.remove(&(cid.0, oid));
            }
        }
    }

    /// Apply a bit-rot fault: deterministically select the `locus`-th
    /// stored unit (written array chunks and KV values, in container /
    /// object / unit order) and flip one stored byte of its `shard`-th
    /// copy (replica index; for EC objects, cell index — parity cells
    /// included).  Re-rotting the same copy is idempotent; rotting
    /// *another* copy of an already-rotten unit extends the damage
    /// toward (and past) the redundancy limit.  Returns `false` when
    /// the pool stores no rot-able bytes (e.g. Sized data mode).
    // simlint::panic_root — fault-handling path: must never panic
    // simlint::allow(hot-alloc) — fault application: runs once per injected fault, not per event
    pub fn apply_bit_rot(&mut self, locus: u64, shard: u64) -> bool {
        enum Unit {
            Chunk(u64),
            Key(Vec<u8>),
        }
        let mut units: Vec<(ContainerId, Oid, Unit)> = Vec::new();
        for cont in self.containers.iter().flatten() {
            for (oid, entry) in &cont.objects {
                match &entry.data {
                    ObjData::Array(a) => units.extend(
                        a.written_chunks()
                            .filter(|&c| a.chunk_stored_bytes(c) > 0)
                            .map(|c| (cont.id, *oid, Unit::Chunk(c))),
                    ),
                    ObjData::Kv(kv) => units.extend(
                        kv.list(b"")
                            .into_iter()
                            .map(|k| (cont.id, *oid, Unit::Key(k))),
                    ),
                }
            }
        }
        if units.is_empty() {
            return false;
        }
        let idx = (locus % units.len() as u64) as usize;
        let (cid, oid, unit) = units.swap_remove(idx);
        match unit {
            Unit::Chunk(c) => self.plant_chunk_rot(cid, oid, c, locus, shard),
            Unit::Key(k) => self.plant_kv_rot(cid, oid, &k, shard),
        }
    }

    /// Plant rot on one copy of an array chunk: pick a stored byte of
    /// the addressed replica/cell deterministically from `locus` and
    /// flip it (first copy only — further copies extend the registry's
    /// shard set without flipping again).
    // simlint::panic_root — fault-handling path: must never panic
    fn plant_chunk_rot(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        chunk: u64,
        locus: u64,
        shard: u64,
    ) -> bool {
        let (class, cs, rf) = match self.obj(cid, oid) {
            Ok(entry) => {
                let cs = match &entry.data {
                    ObjData::Array(a) => a.chunk_size(),
                    ObjData::Kv(_) => return false,
                };
                let rf = entry.layout.group_for(chunk_dkey_hash(chunk)).len().max(1) as u64;
                (entry.layout.class, cs, rf)
            }
            Err(_) => return false,
        };
        let lo = chunk * cs;
        match class {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                self.plant_extent_rot(cid, oid, lo + chunk_dkey_hash(locus) % cs, 0)
            }
            ObjectClass::Replicated { .. } => {
                self.plant_extent_rot(cid, oid, lo + chunk_dkey_hash(locus) % cs, shard % rf)
            }
            ObjectClass::ErasureCoded { k, p } => {
                let (k, p) = (k as u64, p as u64);
                let cell = shard % (k + p);
                if cell >= k {
                    return self.plant_parity_rot(cid, oid, lo, cell - k);
                }
                let cell_len = cs.div_ceil(k);
                // land inside the addressed data cell, clamped to the
                // chunk's logical bytes (the tail cell carries padding)
                let mut within = cell * cell_len + chunk_dkey_hash(locus) % cell_len;
                if within >= cs {
                    within = cell * cell_len;
                }
                if within >= cs {
                    within = 0;
                }
                self.plant_extent_rot(cid, oid, lo + within, within / cell_len)
            }
        }
    }

    /// Flip the stored byte at `offset` (first copy only) and record
    /// the hit shard copy.  Returns `false` when no real byte backs
    /// the offset.
    // simlint::panic_root — fault-handling path: must never panic
    fn plant_extent_rot(&mut self, cid: ContainerId, oid: Oid, offset: u64, shard: u64) -> bool {
        let rkey = (cid.0, oid);
        let already = self
            .rot
            .extents
            .get(&rkey)
            .and_then(|m| m.get(&offset))
            .is_some();
        if !already {
            let flipped = match self.obj_mut(cid, oid) {
                Ok(entry) => match &mut entry.data {
                    ObjData::Array(a) => a.corrupt_at(offset),
                    ObjData::Kv(_) => false,
                },
                Err(_) => false,
            };
            if !flipped {
                return false;
            }
        }
        self.rot
            .extents
            .entry(rkey)
            .or_default()
            .entry(offset)
            .or_default()
            .insert(shard);
        true
    }

    /// Flip one byte of parity cell `parity_idx` in the chunk holding
    /// `offset` (first hit only) and record it.  Returns `false` for
    /// non-EC objects or out-of-range parity indices.
    // simlint::panic_root — fault-handling path: must never panic
    fn plant_parity_rot(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        parity_idx: u64,
    ) -> bool {
        let rkey = (cid.0, oid);
        let (class, cs) = match self.obj(cid, oid) {
            Ok(entry) => match &entry.data {
                ObjData::Array(a) => (entry.layout.class, a.chunk_size()),
                ObjData::Kv(_) => return false,
            },
            Err(_) => return false,
        };
        let lo = offset / cs * cs;
        if self
            .rot
            .parity
            .get(&rkey)
            .is_some_and(|s| s.contains(&(lo, parity_idx)))
        {
            return true;
        }
        let Some(ec) = self.ec_for(class) else {
            return false;
        };
        let flipped = match self.obj_mut(cid, oid) {
            Ok(entry) => match &mut entry.data {
                ObjData::Array(a) => a.corrupt_parity_at(lo, parity_idx as usize, &ec),
                ObjData::Kv(_) => false,
            },
            Err(_) => false,
        };
        if !flipped {
            return false;
        }
        self.rot
            .parity
            .entry(rkey)
            .or_default()
            .insert((lo, parity_idx));
        true
    }

    /// Flip a stored KV value byte (first copy only) and record the hit
    /// replica.  Returns `false` for absent or Sized values.
    // simlint::panic_root — fault-handling path: must never panic
    fn plant_kv_rot(&mut self, cid: ContainerId, oid: Oid, key: &[u8], shard: u64) -> bool {
        let rf = match self.obj(cid, oid) {
            Ok(entry) => entry.layout.group_for(dkey_hash(key)).len().max(1) as u64,
            Err(_) => return false,
        };
        let rkey = (cid.0, oid);
        let already = self.rot.kv.get(&rkey).and_then(|m| m.get(key)).is_some();
        if !already {
            let flipped = match self.obj_mut(cid, oid) {
                Ok(entry) => match &mut entry.data {
                    ObjData::Kv(kv) => kv.corrupt_value(key),
                    ObjData::Array(_) => false,
                },
                Err(_) => false,
            };
            if !flipped {
                return false;
            }
        }
        self.rot
            .kv
            .entry(rkey)
            .or_default()
            .entry(key.to_vec())
            .or_default()
            .insert(shard % rf);
        true
    }

    // ---- background scrubber ----------------------------------------------------

    /// Start (or restart) a scrub pass from the beginning of the scan
    /// domain.  Drive it with [`DaosSystem::scrub_wave`].
    pub fn scrub_start(&mut self) {
        self.scrub.active = true;
        self.scrub.cursor = None;
    }

    /// Whether a scrub pass is in progress.
    pub fn scrub_active(&self) -> bool {
        self.scrub.active
    }

    /// Scrubber progress so far ([`ScrubReport::publish`] for
    /// telemetry).
    pub fn scrub_progress(&self) -> ScrubReport {
        self.scrub.report
    }

    /// Emit the next scrub wave: verify up to `max_units` stored units
    /// (array chunks and KV values) in container/object/unit order from
    /// the resume cursor, repairing what the redundancy covers, as one
    /// `scrub.wave` span of target-local disk reads plus any repair
    /// copies — all competing with foreground traffic through the same
    /// fairshare NVMe/engine resources.  Rot beyond redundancy is
    /// counted and **left in place**: reads refuse it loudly and the
    /// durability oracle names it.  Returns `None` when the pass is
    /// complete.  The cursor is replay-visible state, so a pass resumes
    /// byte-identically after a crash.
    // simlint::panic_root — scrub path runs under injected faults: must never panic
    // simlint::allow(hot-alloc) — wave construction: runs once per scrub wave (bounded by max_units), not per engine event
    pub fn scrub_wave(&mut self, max_units: usize) -> Option<Step> {
        assert!(max_units > 0);
        if !self.scrub.active {
            return None;
        }
        // phase 1: scan forward from the cursor, collecting work
        let start = self.scrub.cursor;
        let mut work: Vec<(ContainerId, Oid, u64, ScrubUnit)> = Vec::new();
        let mut next: Option<(u32, Oid, u64)> = None;
        'scan: for (ci, cont) in self.containers.iter().enumerate() {
            let Some(cont) = cont else { continue };
            if let Some((scid, _, _)) = start {
                if (ci as u32) < scid {
                    continue;
                }
            }
            for (oid, entry) in &cont.objects {
                let from_unit = match start {
                    Some((scid, soid, u)) if ci as u32 == scid => {
                        if *oid < soid {
                            continue;
                        }
                        if *oid == soid {
                            u
                        } else {
                            0
                        }
                    }
                    _ => 0,
                };
                match &entry.data {
                    ObjData::Array(a) => {
                        for c in a.written_chunks().filter(|&c| c >= from_unit) {
                            if work.len() >= max_units {
                                next = Some((ci as u32, *oid, c));
                                break 'scan;
                            }
                            work.push((
                                cont.id,
                                *oid,
                                a.chunk_stored_bytes(c),
                                ScrubUnit::Chunk(c, a.verify_chunk(c)),
                            ));
                        }
                    }
                    ObjData::Kv(kv) => {
                        for (u, k) in kv
                            .list(b"")
                            .into_iter()
                            .enumerate()
                            .skip(from_unit as usize)
                        {
                            if work.len() >= max_units {
                                next = Some((ci as u32, *oid, u as u64));
                                break 'scan;
                            }
                            let ok = kv.verify(&k).unwrap_or(true);
                            let bytes = kv.get(&k).map(|v| v.len()).unwrap_or(0);
                            work.push((cont.id, *oid, bytes, ScrubUnit::Key(k, ok)));
                        }
                    }
                }
            }
        }
        self.scrub.cursor = next;
        if next.is_none() {
            self.scrub.active = false;
            self.scrub.report.passes += 1;
        }
        if work.is_empty() {
            return None;
        }
        // phase 2: charge the scan reads and apply repairs
        let mut reads: Vec<Step> = Vec::new();
        let mut repairs: Vec<Step> = Vec::new();
        let mut wave_bytes = 0u64;
        for (cid, oid, bytes, unit) in work {
            self.scrub.report.units_scanned += 1;
            self.scrub.report.bytes_scanned += bytes;
            self.csum.verified += 1;
            wave_bytes += bytes;
            let before = self.csum;
            match unit {
                ScrubUnit::Chunk(c, mm) => {
                    let (group, per_member) = match self.obj(cid, oid) {
                        Ok(entry) => {
                            let group = entry.layout.group_for(chunk_dkey_hash(c)).to_vec();
                            let per = match entry.layout.class {
                                ObjectClass::ErasureCoded { .. } => {
                                    bytes as f64 / group.len().max(1) as f64
                                }
                                _ => bytes as f64,
                            };
                            (group, per)
                        }
                        Err(_) => continue,
                    };
                    reads.push(self.scrub_read_cost(&group, per_member));
                    if let Some(mm) = mm {
                        // beyond-redundancy rot is counted and left in
                        // place: reads refuse it, the oracle names it
                        if let Ok(step) = self.repair_array_rot(cid, oid, std::slice::from_ref(&mm))
                        {
                            repairs.push(step);
                        }
                    }
                }
                ScrubUnit::Key(k, ok) => {
                    let group = match self.obj(cid, oid) {
                        Ok(entry) => entry.layout.group_for(dkey_hash(&k)).to_vec(),
                        Err(_) => continue,
                    };
                    reads.push(self.scrub_read_cost(&group, (bytes as f64).max(64.0)));
                    if !ok {
                        if let Ok(step) = self.repair_kv_rot(cid, oid, &k, &group) {
                            repairs.push(step);
                        }
                    }
                }
            }
            let after = self.csum;
            self.scrub.report.detected += after.detected - before.detected;
            self.scrub.report.repaired += after.repaired - before.repaired;
            self.scrub.report.unrepairable += after.unrepairable - before.unrepairable;
        }
        self.scrub.report.waves += 1;
        let wave = if repairs.is_empty() {
            Step::par(reads)
        } else {
            Step::seq([Step::par(reads), Step::seq(repairs)])
        };
        Some(Step::span("scrub", "wave", wave_bytes, wave))
    }

    /// Target-local scan cost: each servable group member reads its
    /// share of the stored bytes straight off its NVMe through the
    /// engine — no client or network involvement, but full contention
    /// with foreground traffic on the shared fairshare resources.
    fn scrub_read_cost(&self, group: &[TargetId], bytes_each: f64) -> Step {
        let reads: Vec<Step> = group
            .iter()
            .filter(|&&t| self.pool.is_servable(t))
            .map(|&t| {
                let srv = &self.topo.servers[t.server as usize];
                let res = &self.srv_res[t.server as usize];
                let dev = self.dev_for(t);
                Step::seq([
                    Step::transfer(
                        bytes_each,
                        [srv.nvme_r[dev], srv.nvme_r_pool, res.engine_xfer],
                    ),
                    Step::delay(self.cal.nvme_read_lat_ns),
                ])
            })
            .collect();
        Step::par(reads)
    }

    // ---- rebuild ---------------------------------------------------------------

    /// Re-protect every object affected by excluded targets: degraded
    /// shard-group members are remapped to healthy replacement targets
    /// and the surviving data is copied/reconstructed onto them,
    /// server-to-server.  Returns the report and the op chain modelling
    /// the data movement (submit it to account for rebuild time; real
    /// DAOS runs this in the background while serving degraded I/O).
    // simlint::panic_root — fault-handling path: must never panic
    // simlint::amortized — rebuild runs once per fault, not per event; its planning cost amortizes across the whole degraded window it repairs
    pub fn rebuild(&mut self) -> (RebuildReport, Step) {
        let pool = self.pool.clone();
        let mut report = RebuildReport::default();
        let mut moves: Vec<Step> = Vec::new();
        // collect the per-shard plans first (borrow juggling: layout
        // edits happen in the same pass, costs are built after)
        struct Plan {
            sources: Vec<TargetId>,
            read_each: f64,
            dst: TargetId,
            write_bytes: f64,
        }
        let mut plans: Vec<Plan> = Vec::new();
        for cont in self.containers.iter_mut().flatten() {
            for entry in cont.objects.values_mut() {
                report.objects_scanned += 1;
                let class = entry.layout.class;
                let ngroups = entry.layout.groups.len().max(1);
                let obj_bytes = match &entry.data {
                    ObjData::Array(a) => a.size() as f64,
                    ObjData::Kv(kv) => kv.len() as f64 * 512.0,
                };
                let group_share = obj_bytes / ngroups as f64;
                for group in entry.layout.groups.iter_mut() {
                    for m in 0..group.len() {
                        let t = group[m];
                        // repair fully-down members only: drained and
                        // reintegrating targets still serve their shards
                        // and are the migration engine's responsibility
                        if pool.is_servable(t) {
                            continue;
                        }
                        let survivors: Vec<TargetId> = group
                            .iter()
                            .copied()
                            .filter(|&x| pool.is_servable(x))
                            .collect();
                        let (needed, write_bytes, read_each) = match class {
                            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                                report.shards_lost += 1;
                                continue;
                            }
                            ObjectClass::Replicated { .. } => (1usize, group_share, group_share),
                            ObjectClass::ErasureCoded { k, .. } => {
                                let k = k as usize;
                                (k, group_share / k as f64, group_share / k as f64)
                            }
                        };
                        if survivors.len() < needed {
                            report.shards_lost += 1;
                            continue;
                        }
                        let Some(dst) = pick_replacement(&pool, group, t) else {
                            report.shards_lost += 1;
                            continue;
                        };
                        group[m] = dst;
                        report.shards_rebuilt += 1;
                        report.bytes_moved += write_bytes;
                        if write_bytes > 0.0 {
                            plans.push(Plan {
                                sources: survivors[..needed].to_vec(),
                                read_each,
                                dst,
                                write_bytes,
                            });
                        }
                    }
                }
            }
        }
        for plan in plans {
            moves.push(self.rebuild_move(
                &plan.sources,
                plan.read_each,
                plan.dst,
                plan.write_bytes,
            ));
        }
        // throttle the background traffic into waves so a mass rebuild
        // does not model as one infinitely-wide burst
        let moved = report.bytes_moved as u64;
        let step = Step::span(
            "rebuild",
            "scan",
            moved,
            Step::seq(
                moves
                    .chunks(32)
                    .map(|wave| Step::par(wave.to_vec()))
                    .collect::<Vec<_>>(),
            ),
        );
        (report, step)
    }

    /// Server-to-server shard move: read the surviving cells/replica,
    /// ship them to the destination server, write the rebuilt shard.
    // simlint::panic_root — fault-handling path: must never panic
    fn rebuild_move(
        &self,
        sources: &[TargetId],
        read_each: f64,
        dst: TargetId,
        write_bytes: f64,
    ) -> Step {
        let dsts = &self.topo.servers[dst.server as usize];
        let dres = &self.srv_res[dst.server as usize];
        let ddev = self.dev_for(dst);
        let reads = sources
            .iter()
            .map(|&src| {
                let ssrv = &self.topo.servers[src.server as usize];
                let sres = &self.srv_res[src.server as usize];
                let sdev = self.dev_for(src);
                Step::transfer(
                    read_each,
                    [
                        ssrv.nvme_r[sdev],
                        ssrv.nvme_r_pool,
                        sres.engine_xfer,
                        ssrv.nic_tx,
                        dsts.nic_rx,
                    ],
                )
            })
            .collect::<Vec<_>>();
        Step::span(
            "rebuild",
            "move",
            write_bytes as u64,
            Step::seq([
                Step::delay(self.cal.net_rtt_ns),
                Step::par(reads),
                Step::transfer(
                    write_bytes,
                    [dres.engine_xfer, dsts.nvme_w[ddev], dsts.nvme_w_pool],
                ),
                Step::delay(self.cal.nvme_write_lat_ns),
            ]),
        )
    }

    // ---- elastic membership & the migration engine ------------------------------

    /// Targets of the current map that cannot serve I/O.  Only these can
    /// hold an undetected crash, so they bound the auditor's retry
    /// budget ([`DaosSystem::verify_durability`]).
    fn down_targets(&self) -> usize {
        self.pool.total_targets() - self.pool.servable_count()
    }

    /// Add a server to the pool online (`dmg system join` + extend).
    /// The topology must have spare hardware (deploys over fewer servers
    /// than the topology holds leave room to grow).  The new engine's
    /// service resources are created in `sched`; its targets join in
    /// `Reint` state — they receive migrated shards and serve them, but
    /// new layouts skip them until [`DaosSystem::finish_rebalance`]
    /// promotes them.  Returns the new server's rank.
    // simlint::allow(digest-taint) — membership op: driven by fault-plan actions, whose canonical encoding is already folded into the replay digest at install time
    pub fn add_server(&mut self, sched: &mut Scheduler) -> u16 {
        let s = self.pool.server_count();
        assert!(
            s < self.topo.server_count(),
            "topology has no spare server hardware to add"
        );
        let rank = self.pool.add_server();
        self.srv_res.push(ServerRes {
            engine_xfer: sched.add_resource(format!("daos{s}.engine"), self.cal.engine_xfer_bw),
            tgt_svc: (0..self.cal.targets_per_server)
                .map(|t| sched.add_resource(format!("daos{s}.tgt{t}"), self.cal.target_svc_iops))
                .collect(),
        });
        rank
    }

    /// Start draining a server (`dmg pool drain`): its targets keep
    /// serving their shards but leave new layouts; plan a rebalance to
    /// move the shards off, then [`DaosSystem::finish_rebalance`]
    /// retires them.
    // simlint::allow(digest-taint) — membership op: driven by fault-plan actions, whose canonical encoding is already folded into the replay digest at install time
    pub fn drain_server(&mut self, server: u16) {
        self.pool.drain_server(server);
    }

    /// Plan the data migration for the current membership: every shard
    /// on a draining target moves off it, and when reintegrating targets
    /// exist (a newly added server), a proportional share of the shards
    /// on up targets moves onto them — consistent-hashing-style minimal
    /// movement, so growing 4→5 servers relocates ≈1/5th of the data.
    ///
    /// Layouts are remapped at plan time (the same modelling shortcut as
    /// [`DaosSystem::rebuild`]): reads follow the new layout immediately
    /// while the planned moves model the background copy cost.  Ship the
    /// moves with [`DaosSystem::migration_wave`]; a crash between waves
    /// only invalidates the moves it made stale.
    // simlint::panic_root — membership-change path: must never panic
    // simlint::amortized — planning runs once per membership change, not per event; its scan amortizes across the whole rebalance it plans
    pub fn rebalance_plan(&mut self) -> RebalanceReport {
        let pool = self.pool.clone();
        let mut report = RebalanceReport::default();
        // migration destinations: reintegrating targets in linear order
        let reint: Vec<TargetId> = (0..pool.total_targets())
            .map(|i| pool.target_at(i))
            .filter(|&t| pool.state(t) == crate::pool::TargetState::Reint)
            .collect();
        let total = pool.total_targets() as u64;
        let mut plans: Vec<(MoveKey, MovePlan)> = Vec::new();
        for cont in self.containers.iter_mut().flatten() {
            let cid = cont.id;
            for (oid, entry) in cont.objects.iter_mut() {
                report.objects_scanned += 1;
                let class = entry.layout.class;
                let ngroups = entry.layout.groups.len().max(1);
                let obj_bytes = match &entry.data {
                    ObjData::Array(a) => a.size() as f64,
                    ObjData::Kv(kv) => kv.len() as f64 * 512.0,
                };
                let group_share = obj_bytes / ngroups as f64;
                let member_bytes = match class {
                    ObjectClass::Sharded(_)
                    | ObjectClass::ShardedMax
                    | ObjectClass::Replicated { .. } => group_share,
                    ObjectClass::ErasureCoded { k, .. } => group_share / k as f64,
                };
                for (g, group) in entry.layout.groups.iter_mut().enumerate() {
                    for m in 0..group.len() {
                        let from = group[m];
                        let h = move_hash(oid, g, m);
                        let dst = match pool.state(from) {
                            // drained shards must leave; prefer the new
                            // server's targets, else any up target
                            crate::pool::TargetState::Drain => {
                                pick_migration_dest(&pool, group, from, &reint, h)
                            }
                            // minimal movement onto a new server: member
                            // moves iff its hash lands in the added slice
                            crate::pool::TargetState::Up
                                if !reint.is_empty() && h % total < reint.len() as u64 =>
                            {
                                pick_reint_dest(&pool, group, from, &reint, h)
                            }
                            _ => None,
                        };
                        let Some(dst) = dst else {
                            if pool.state(from) == crate::pool::TargetState::Drain {
                                report.moves_skipped += 1;
                            }
                            continue;
                        };
                        group[m] = dst;
                        report.moves_planned += 1;
                        report.bytes_planned += member_bytes;
                        plans.push((
                            (cid.0, *oid, g, m),
                            MovePlan {
                                sources: vec![from],
                                read_each: member_bytes,
                                dst,
                                write_bytes: member_bytes,
                            },
                        ));
                    }
                }
            }
        }
        for (key, plan) in plans {
            // re-planning overwrites: the newest layout decision wins
            self.migration.pending.insert(key, plan);
        }
        report
    }

    /// Emit the next migration wave: up to `max_moves` pending moves,
    /// validated against the *current* layouts and pool map, as one
    /// parallel step of server-to-server copies competing with
    /// foreground traffic through the same NIC/engine/NVMe resources.
    /// Stale moves (object punched, layout remapped by a crash-triggered
    /// rebuild, destination no longer servable) are dropped and counted
    /// — this is what makes migration resumable after a crash.  Returns
    /// `None` when nothing remains to ship.
    // simlint::panic_root — migration path runs under injected faults: must never panic
    // simlint::allow(hot-alloc) — wave construction: runs once per migration wave (bounded by max_moves), not per engine event
    pub fn migration_wave(&mut self, max_moves: usize) -> Option<Step> {
        assert!(max_moves > 0);
        let mut moves: Vec<Step> = Vec::new();
        let mut wave_bytes = 0.0;
        while moves.len() < max_moves {
            let Some(((cid, oid, g, m), plan)) = self.migration.pending.pop_first() else {
                break;
            };
            let cid = ContainerId(cid);
            // validate against the current world: a crash (and the
            // rebuild it triggered) may have invalidated this move
            let valid = match self.obj(cid, oid) {
                Ok(entry) => {
                    entry.layout.groups.get(g).and_then(|grp| grp.get(m)) == Some(&plan.dst)
                        && self.pool.is_servable(plan.dst)
                }
                Err(_) => false,
            };
            if !valid {
                self.migration.moves_dropped += 1;
                continue;
            }
            // re-source from the surviving group when the planned source
            // died mid-migration (redundant classes can still feed the
            // copy; an unreplicated shard with a dead source is dropped
            // and the durability oracle will name the loss)
            let mut sources: Vec<TargetId> = plan
                .sources
                .iter()
                .copied()
                .filter(|&t| self.pool.is_servable(t))
                .collect();
            if sources.is_empty() {
                if let Ok(entry) = self.obj(cid, oid) {
                    sources = entry.layout.groups[g]
                        .iter()
                        .copied()
                        .filter(|&t| t != plan.dst && self.pool.is_servable(t))
                        .take(1)
                        .collect();
                }
            }
            if sources.is_empty() {
                self.migration.moves_dropped += 1;
                continue;
            }
            wave_bytes += plan.write_bytes;
            moves.push(self.rebuild_move(&sources, plan.read_each, plan.dst, plan.write_bytes));
            self.migration.moves_done += 1;
            self.migration.moved_bytes += plan.write_bytes;
        }
        if moves.is_empty() {
            return None;
        }
        Some(Step::span(
            "migrate",
            "wave",
            wave_bytes as u64,
            Step::par(moves),
        ))
    }

    /// Planned moves not yet shipped.
    pub fn migration_pending(&self) -> usize {
        self.migration.pending.len()
    }

    /// Progress of the migration engine so far.
    pub fn migration_progress(&self) -> MigrationProgress {
        MigrationProgress {
            moves_done: self.migration.moves_done,
            moves_dropped: self.migration.moves_dropped,
            moved_bytes: self.migration.moved_bytes,
        }
    }

    /// Complete the rebalance: retire fully-drained targets
    /// (`Drain` → `Down`) and promote reintegrating ones (`Reint` →
    /// `Up`).  Call once [`DaosSystem::migration_pending`] reaches zero;
    /// any shard the planner could not move off a drained target becomes
    /// unavailable here, which is exactly what the durability oracles
    /// are watching for.
    // simlint::allow(digest-taint) — membership op: driven by fault-plan actions, whose canonical encoding is already folded into the replay digest at install time
    pub fn finish_rebalance(&mut self) {
        self.pool.retire_drained();
        self.pool.promote_reint();
    }

    // ---- space accounting -------------------------------------------------------

    /// Pool usage summary (`dmg pool query`): logical bytes stored per
    /// object kind and totals.
    pub fn pool_query(&self) -> PoolInfo {
        let mut info = PoolInfo {
            servers: self.pool.server_count(),
            targets_total: self.pool.total_targets(),
            targets_up: self.pool.up_count(),
            containers: 0,
            objects: 0,
            array_bytes: 0.0,
            kv_entries: 0,
        };
        for cont in self.containers.iter().flatten() {
            info.containers += 1;
            info.objects += cont.objects.len();
            for entry in cont.objects.values() {
                match &entry.data {
                    ObjData::Array(a) => info.array_bytes += a.size() as f64,
                    ObjData::Kv(kv) => info.kv_entries += kv.len(),
                }
            }
        }
        info
    }

    // ---- durability oracles ---------------------------------------------------

    /// Start recording acknowledged writes for the durability oracles.
    /// Call once after deploy, before the workload; the ledger is then
    /// maintained by every mutating data path and consumed by
    /// [`DaosSystem::verify_durability`].
    // simlint::allow(digest-taint) — oracle bookkeeping: written by data paths, never read by them; cannot alter any schedule
    pub fn enable_ledger(&mut self) {
        self.ledger = Some(DurabilityLedger::new());
    }

    /// The acked-write ledger, when enabled.
    pub fn ledger(&self) -> Option<&DurabilityLedger> {
        self.ledger.as_ref()
    }

    /// Read every acknowledged write back through the owning API and
    /// report anything missing, wrong, or unservable.
    ///
    /// The auditor behaves like any client: its reads observe
    /// still-undetected crashes ([`DaosError::TargetDown`]) and retry
    /// against the refreshed pool map, exactly as application reads do.
    /// Content is compared byte-for-byte in Full data mode and by
    /// length in Sized mode.  Returned [`Step`] costs are discarded —
    /// this is an offline audit, run after quiescence, that must not
    /// perturb the simulated schedule.
    // simlint::allow(digest-taint) — offline audit: cost steps are discarded and only crash-detection bookkeeping is touched, after the workload has quiesced
    pub fn verify_durability(&mut self, client: usize) -> OracleReport {
        let Some(ledger) = self.ledger.clone() else {
            return OracleReport::default();
        };
        let mut report = OracleReport::default();
        for ((cid, oid, key), acked) in ledger.kv_entries() {
            report.checked_kv += 1;
            let subject = format!(
                "cont {} obj {} key {:?}",
                cid.0,
                oid,
                String::from_utf8_lossy(key)
            );
            let mut got = self.kv_get(client, *cid, *oid, key);
            // first touches of crashed targets fail once per client;
            // detection is monotone per (client, target), so the retry
            // budget is the number of down targets in the *current* map,
            // re-read each attempt — membership changes (drained servers
            // retired mid-audit, servers added) neither inflate nor
            // starve it
            let mut detections = 0;
            while matches!(got, Err(DaosError::TargetDown)) && detections < self.down_targets() {
                detections += 1;
                got = self.kv_get(client, *cid, *oid, key);
            }
            match got {
                Ok((read, _step)) => {
                    if let Some(detail) = content_mismatch(acked, &read) {
                        report.violations.push(Violation {
                            oracle: self.mismatch_kind(*cid, *oid),
                            subject,
                            detail,
                        });
                    }
                }
                Err(DaosError::BadChecksum) => report.violations.push(Violation {
                    oracle: OracleKind::Corruption,
                    subject,
                    detail: format!(
                        "acked {} bytes, checksum mismatch with rot beyond redundancy",
                        acked.len()
                    ),
                }),
                Err(e) => report.violations.push(Violation {
                    oracle: OracleKind::AckedDurability,
                    subject,
                    detail: format!("acked {} bytes, read failed: {e:?}", acked.len()),
                }),
            }
        }
        for ((cid, oid), extents) in ledger.extent_entries() {
            for (&offset, acked) in extents {
                report.checked_extents += 1;
                let subject = format!(
                    "cont {} obj {} extent [{}, {})",
                    cid.0,
                    oid,
                    offset,
                    offset + acked.len()
                );
                let mut got = self.array_read(client, *cid, *oid, offset, acked.len());
                // detection is monotone per (client, target): the budget
                // is the down-target count of the *current* map version,
                // recomputed per attempt (see the KV loop above)
                let mut detections = 0;
                while matches!(got, Err(DaosError::TargetDown)) && detections < self.down_targets()
                {
                    detections += 1;
                    got = self.array_read(client, *cid, *oid, offset, acked.len());
                }
                match got {
                    Ok((read, _step)) => {
                        if let Some(detail) = content_mismatch(acked, &read) {
                            report.violations.push(Violation {
                                oracle: self.mismatch_kind(*cid, *oid),
                                subject,
                                detail,
                            });
                        }
                    }
                    Err(DaosError::BadChecksum) => report.violations.push(Violation {
                        oracle: OracleKind::Corruption,
                        subject,
                        detail: format!(
                            "acked {} bytes, checksum mismatch with rot beyond redundancy",
                            acked.len()
                        ),
                    }),
                    Err(e) => report.violations.push(Violation {
                        oracle: OracleKind::AckedDurability,
                        subject,
                        detail: format!("acked {} bytes, read failed: {e:?}", acked.len()),
                    }),
                }
            }
        }
        report
    }

    /// Classify a read-back content mismatch: rot the registry still
    /// names is **Corruption** — bytes silently wrong, not lost; a
    /// mismatch on a redundant class otherwise means fail-over or
    /// reconstruction served bad bytes; on a plain class it is a
    /// straight durability loss.
    fn mismatch_kind(&self, cid: ContainerId, oid: Oid) -> OracleKind {
        if self.rot.touches(&(cid.0, oid)) {
            return OracleKind::Corruption;
        }
        match self.obj(cid, oid).map(|e| e.layout.class) {
            Ok(ObjectClass::Replicated { .. }) | Ok(ObjectClass::ErasureCoded { .. }) => {
                OracleKind::Reconstruction
            }
            _ => OracleKind::AckedDurability,
        }
    }

    /// Check that every shard group of every live object is fully
    /// redundant again (no down members) — the post-rebuild invariant
    /// behind the paper's time-to-redundancy-restored measurements.
    pub fn verify_redundancy(&self) -> OracleReport {
        let mut report = OracleReport::default();
        for cont in self.containers.iter().flatten() {
            for (oid, entry) in &cont.objects {
                for (g, group) in entry.layout.groups.iter().enumerate() {
                    report.checked_groups += 1;
                    let down: Vec<String> = group
                        .iter()
                        .filter(|&&t| !self.pool.is_up(t))
                        .map(|t| format!("{}.{}", t.server, t.target))
                        .collect();
                    if !down.is_empty() {
                        report.violations.push(Violation {
                            oracle: OracleKind::RedundancyRestored,
                            subject: format!("cont {} obj {} group {g}", cont.id.0, oid),
                            detail: format!("down members after rebuild: {}", down.join(", ")),
                        });
                    }
                }
            }
        }
        report
    }

    /// Remove one acked KV entry behind the ledger's back — a
    /// **planted-violation test hook** for the oracle self-tests, never
    /// called by any data path.  Returns `false` when the entry does
    /// not exist.
    // simlint::allow(digest-taint) — planted-violation test hook: deliberately corrupts state to prove the oracles catch it
    pub fn inject_drop_acked_kv(&mut self, cid: ContainerId, oid: Oid, key: &[u8]) -> bool {
        match self.obj_mut(cid, oid) {
            Ok(entry) => match &mut entry.data {
                ObjData::Kv(kv) => kv.remove(key),
                ObjData::Array(_) => false,
            },
            Err(_) => false,
        }
    }

    /// Flip one stored byte — a **planted-rot test hook**; see
    /// [`ArrayData::corrupt_at`].  For Array objects the flip lands at
    /// `offset` (inside one data cell for EC); for Key-Value objects it
    /// lands in the value of the `offset`-th key (sorted order).  The
    /// rot registry records the damage against shard copy 0, so
    /// verified reads detect it and repair it when redundancy allows.
    /// Returns `false` when no real byte backs the offset.
    // simlint::allow(digest-taint) — planted-violation test hook: deliberately corrupts state to prove the oracles catch it
    pub fn inject_corrupt_extent(&mut self, cid: ContainerId, oid: Oid, offset: u64) -> bool {
        let kv_key = match self.obj(cid, oid) {
            Ok(entry) => match &entry.data {
                ObjData::Array(_) => None,
                ObjData::Kv(kv) => {
                    let keys = kv.list(b"");
                    if keys.is_empty() {
                        return false;
                    }
                    Some(keys[(offset % keys.len() as u64) as usize].clone())
                }
            },
            Err(_) => return false,
        };
        match kv_key {
            None => self.plant_extent_rot(cid, oid, offset, 0),
            Some(key) => self.plant_kv_rot(cid, oid, &key, 0),
        }
    }

    /// Flip one stored byte of a specific replica/cell copy — the
    /// beyond-redundancy planting hook: calling it for every shard of a
    /// location rots the datum past what repair can recover.
    // simlint::allow(digest-taint) — planted-violation test hook: deliberately corrupts state to prove the oracles catch it
    pub fn inject_corrupt_replica(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        shard: u64,
    ) -> bool {
        self.plant_extent_rot(cid, oid, offset, shard)
    }

    /// Flip one byte of EC parity cell `parity_idx` in the chunk
    /// holding `offset` — the planted-rot hook for cells no logical
    /// byte offset addresses.
    // simlint::allow(digest-taint) — planted-violation test hook: deliberately corrupts state to prove the oracles catch it
    pub fn inject_corrupt_parity(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        parity_idx: u64,
    ) -> bool {
        self.plant_parity_rot(cid, oid, offset, parity_idx)
    }

    /// Flip a stored byte of a KV value's `shard`-th replica copy.
    // simlint::allow(digest-taint) — planted-violation test hook: deliberately corrupts state to prove the oracles catch it
    pub fn inject_corrupt_kv(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        key: &[u8],
        shard: u64,
    ) -> bool {
        self.plant_kv_rot(cid, oid, key, shard)
    }

    fn obj(&self, cid: ContainerId, oid: Oid) -> Result<&ObjectEntry, DaosError> {
        self.cont(cid)?
            .objects
            .get(&oid)
            .ok_or(DaosError::NoSuchObject)
    }

    fn obj_mut(&mut self, cid: ContainerId, oid: Oid) -> Result<&mut ObjectEntry, DaosError> {
        self.cont_mut(cid)?
            .objects
            .get_mut(&oid)
            .ok_or(DaosError::NoSuchObject)
    }
}

/// Pool usage summary returned by [`DaosSystem::pool_query`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolInfo {
    /// Engines in the pool.
    pub servers: usize,
    /// Total targets.
    pub targets_total: usize,
    /// Targets currently serving I/O.
    pub targets_up: usize,
    /// Live containers.
    pub containers: usize,
    /// Live objects across all containers.
    pub objects: usize,
    /// Logical Array bytes stored.
    // simlint::dim(bytes)
    pub array_bytes: f64,
    /// Key-Value entries stored.
    pub kv_entries: usize,
}

/// Wrap repair copies as a `csum.repair` span ([`Step::Noop`] when the
/// repair carried no billable movement, e.g. no servable clean source).
fn repair_span(bytes: u64, moves: Vec<Step>) -> Step {
    if moves.is_empty() {
        Step::Noop
    } else {
        Step::span("csum", "repair", bytes, Step::par(moves))
    }
}

/// Array chunks use their index as dkey; DAOS hashes it before routing,
/// which is what spreads a sequential writer's consecutive chunks
/// non-contiguously over the targets.
pub fn chunk_dkey_hash(chunk: u64) -> u64 {
    let mut z = chunk ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Compare an acked value against what a verification read returned:
/// byte-for-byte when both sides carry bytes, by length otherwise
/// (Sized mode tracks no content).  `None` means they agree.
fn content_mismatch(acked: &AckedValue, read: &ReadPayload) -> Option<String> {
    let read_len = read.len();
    if acked.len() != read_len {
        return Some(format!(
            "acked {} bytes, read {} bytes",
            acked.len(),
            read_len
        ));
    }
    match (acked, read) {
        (AckedValue::Bytes(b), ReadPayload::Bytes(rb)) if b != rb => {
            let first = b.iter().zip(rb.iter()).position(|(x, y)| x != y);
            Some(format!(
                "content differs at byte {} of {} (acked digest {:#018x}, read digest {:#018x})",
                first.unwrap_or(0),
                b.len(),
                content_digest(b),
                content_digest(rb),
            ))
        }
        _ => None,
    }
}

/// Deterministic per-shard hash deciding whether (and where) a shard
/// moves during a rebalance.  A pure function of the shard's identity,
/// so replanning after a crash reproduces the same decisions.
fn move_hash(oid: &Oid, g: usize, m: usize) -> u64 {
    simkit::SplitMix64::new(oid.placement_hash() ^ ((g as u64) << 20) ^ (m as u64 + 1)).next_u64()
}

/// Destination for a shard leaving a draining target: a reintegrating
/// target on a server the group does not already use, else any up
/// target via the rebuild replacement policy, else `None` (the shard
/// stays and is lost when the drain retires).
fn pick_migration_dest(
    pool: &PoolMap,
    group: &[TargetId],
    from: TargetId,
    reint: &[TargetId],
    hash: u64,
) -> Option<TargetId> {
    pick_reint_dest(pool, group, from, reint, hash).or_else(|| pick_replacement(pool, group, from))
}

/// Destination among the reintegrating targets only, preserving
/// fault-domain spread (no server already used by the group); `None`
/// when every reintegrating target collides with the group's servers.
fn pick_reint_dest(
    pool: &PoolMap,
    group: &[TargetId],
    from: TargetId,
    reint: &[TargetId],
    hash: u64,
) -> Option<TargetId> {
    let used: BTreeSet<u16> = group
        .iter()
        .copied()
        .filter(|&t| t != from && pool.is_servable(t))
        .map(|t| t.server)
        .collect();
    let fresh: Vec<TargetId> = reint
        .iter()
        .copied()
        .filter(|t| !used.contains(&t.server))
        .collect();
    if fresh.is_empty() {
        return None;
    }
    Some(fresh[(hash % fresh.len() as u64) as usize])
}

/// Distribution key hash (DAOS hashes dkeys to route to shards).
pub fn dkey_hash(key: &[u8]) -> u64 {
    // FNV-1a, then a finaliser mix.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use simkit::{run, OpId, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn system(servers: usize, clients: usize, mode: DataMode) -> (Scheduler, DaosSystem) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(servers, clients).build(&mut sched);
        let sys = DaosSystem::deploy(&topo, &mut sched, servers, mode);
        (sched, sys)
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    #[test]
    fn kv_round_trip_full_mode() {
        let (mut sched, mut sys) = system(2, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (kv, s) = sys.kv_create(0, cid, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        let s = sys
            .kv_put(0, cid, kv, b"key1", Payload::Bytes(vec![1, 2, 3]))
            .unwrap();
        exec(&mut sched, s);
        let (v, s) = sys.kv_get(0, cid, kv, b"key1").unwrap();
        exec(&mut sched, s);
        assert_eq!(v.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(
            sys.kv_get(0, cid, kv, b"nope").unwrap_err(),
            DaosError::NoSuchKey
        );
        let (keys, _) = sys.kv_list(0, cid, kv, b"key").unwrap();
        assert_eq!(keys, vec![b"key1".to_vec()]);
        let s = sys.kv_remove(0, cid, kv, b"key1").unwrap();
        exec(&mut sched, s);
        assert_eq!(
            sys.kv_get(0, cid, kv, b"key1").unwrap_err(),
            DaosError::NoSuchKey
        );
    }

    #[test]
    fn ec_kv_rejected() {
        let (mut sched, mut sys) = system(2, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        assert_eq!(
            sys.kv_create(0, cid, ObjectClass::EC_2P1).unwrap_err(),
            DaosError::InvalidClass
        );
    }

    #[test]
    fn array_write_read_full_mode() {
        let (mut sched, mut sys) = system(2, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::SX, 1 << 16).unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(1);
        let mut data = vec![0u8; 200_000];
        rng.fill_bytes(&mut data);
        let s = sys
            .array_write(0, cid, oid, 1000, Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);
        let (r, s) = sys.array_read(0, cid, oid, 1000, 200_000).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        let (size, _) = sys.array_get_size(0, cid, oid).unwrap();
        assert_eq!(size, 201_000);
    }

    #[test]
    fn single_process_write_bandwidth_is_sane() {
        // One client streaming 1 MiB ops to a 1-server pool: bandwidth
        // must be below the server's SSD aggregate and well above zero.
        let (mut sched, mut sys) = system(1, 1, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
        exec(&mut sched, s);
        let n = 64u64;
        let mib = 1u64 << 20;
        let t0 = sched.now();
        let mut total = 0.0;
        for i in 0..n {
            let s = sys
                .array_write(0, cid, oid, i * mib, Payload::Sized(mib))
                .unwrap();
            total += exec(&mut sched, s);
        }
        let bw = (n * mib) as f64 / sched.now().secs_since(t0);
        let _ = total;
        // A sequential QD1 writer is bound by one NVMe device's burst
        // bandwidth (sustained share × burst headroom) plus fixed per-op
        // latencies.
        let cal = cluster::Calibration::default();
        let dev_bw = cal.nvme_dev_write_bw() * cal.nvme_dev_burst;
        assert!(bw > 0.8 * dev_bw, "bw {} too low", bw / cluster::GIB);
        assert!(
            bw <= dev_bw * 1.01,
            "bw {} exceeds device",
            bw / cluster::GIB
        );
    }

    #[test]
    fn ec_write_amplification_visible_in_time() {
        // Writing with EC_2P1 moves 1.5x the bytes: with everything else
        // equal the sustained stream takes ~1.5x longer than S1 when the
        // device is the bottleneck... but S1 uses ONE device while EC
        // uses three; compare instead against monitor byte accounting.
        let mut sched = Scheduler::with_monitor();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut sys = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys
            .array_create(0, cid, ObjectClass::EC_2P1, 1 << 20)
            .unwrap();
        exec(&mut sched, s);
        let s = sys
            .array_write(0, cid, oid, 0, Payload::Sized(1 << 20))
            .unwrap();
        exec(&mut sched, s);
        // total bytes through all NVMe write resources = 1.5 MiB
        let total: f64 = topo
            .servers
            .iter()
            .flat_map(|s| s.nvme_w.iter())
            .map(|&r| sched.monitor().units(r))
            .sum();
        assert!(
            (total - 1.5 * (1u64 << 20) as f64).abs() < 1.0,
            "EC wrote {total} bytes"
        );
    }

    #[test]
    fn replication_failover_and_ec_reconstruction() {
        let (mut sched, mut sys) = system(3, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        // replicated KV
        let (kv, s) = sys.kv_create(0, cid, ObjectClass::RP_2).unwrap();
        exec(&mut sched, s);
        let s = sys
            .kv_put(0, cid, kv, b"k", Payload::Bytes(vec![9; 100]))
            .unwrap();
        exec(&mut sched, s);
        // EC array
        let (arr, s) = sys.array_create(0, cid, ObjectClass::EC_2P1, 4096).unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(2);
        let mut data = vec![0u8; 8192];
        rng.fill_bytes(&mut data);
        let s = sys
            .array_write(0, cid, arr, 0, Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);

        // kill one entire server
        sys.exclude_server(0);

        let (v, s) = sys.kv_get(0, cid, kv, b"k").unwrap();
        exec(&mut sched, s);
        assert_eq!(v.len(), 100, "replica failover");
        let (r, s) = sys.array_read(0, cid, arr, 0, 8192).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..], "EC reconstruction");
    }

    #[test]
    fn unreplicated_data_unavailable_after_exclusion() {
        let (mut sched, mut sys) = system(1, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::S1, 4096).unwrap();
        exec(&mut sched, s);
        let s = sys
            .array_write(0, cid, oid, 0, Payload::Bytes(vec![1; 4096]))
            .unwrap();
        exec(&mut sched, s);
        let t = sys
            .cont(cid)
            .unwrap()
            .objects
            .values()
            .next()
            .unwrap()
            .layout
            .groups[0][0];
        sys.exclude_target(t);
        assert_eq!(
            sys.array_read(0, cid, oid, 0, 4096).unwrap_err(),
            DaosError::Unavailable
        );
    }

    #[test]
    fn snapshots_and_destroy() {
        let (mut sched, mut sys) = system(1, 1, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (e1, s) = sys.snapshot_create(0, cid).unwrap();
        exec(&mut sched, s);
        let (e2, s) = sys.snapshot_create(0, cid).unwrap();
        exec(&mut sched, s);
        assert_eq!(sys.snapshot_list(cid).unwrap(), vec![e1, e2]);
        let s = sys.snapshot_destroy(0, cid, e1).unwrap();
        exec(&mut sched, s);
        assert_eq!(sys.snapshot_list(cid).unwrap(), vec![e2]);
        let s = sys.cont_destroy(0, cid).unwrap();
        exec(&mut sched, s);
        assert_eq!(
            sys.snapshot_list(cid).unwrap_err(),
            DaosError::NoSuchContainer
        );
    }

    #[test]
    fn dkey_hash_spreads() {
        let mut buckets = [0u32; 8];
        for i in 0..8000u32 {
            let k = format!("key/{i}");
            buckets[(dkey_hash(k.as_bytes()) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn wrong_type_errors() {
        let (mut sched, mut sys) = system(1, 1, DataMode::Full);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (kv, s) = sys.kv_create(0, cid, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        let (arr, s) = sys.array_create(0, cid, ObjectClass::S1, 4096).unwrap();
        exec(&mut sched, s);
        assert_eq!(
            sys.array_write(0, cid, kv, 0, Payload::Sized(10))
                .unwrap_err(),
            DaosError::WrongObjectType
        );
        assert_eq!(
            sys.kv_put(0, cid, arr, b"k", Payload::Sized(1))
                .unwrap_err(),
            DaosError::WrongObjectType
        );
        assert_eq!(
            sys.array_get_size(0, cid, kv).unwrap_err(),
            DaosError::WrongObjectType
        );
    }

    #[test]
    fn punch_removes_object() {
        let (mut sched, mut sys) = system(1, 1, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::S1, 4096).unwrap();
        exec(&mut sched, s);
        assert_eq!(sys.object_count(cid).unwrap(), 1);
        let s = sys.obj_punch(0, cid, oid).unwrap();
        exec(&mut sched, s);
        assert_eq!(sys.object_count(cid).unwrap(), 0);
        assert!(sys.obj_punch(0, cid, oid).is_err());
    }
}

#[cfg(test)]
mod attr_tests {
    use super::*;
    use crate::container::ContainerProps;
    use crate::data::DataMode;
    use cluster::ClusterSpec;
    use simkit::{run, OpId, World};

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink);
    }

    #[test]
    fn container_attributes_round_trip() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut sys = DaosSystem::deploy(&topo, &mut sched, 1, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let s = sys.cont_set_attr(0, cid, "owner", b"ecmwf").unwrap();
        exec(&mut sched, s);
        let s = sys.cont_set_attr(0, cid, "cycle", b"00z").unwrap();
        exec(&mut sched, s);
        let (v, s) = sys.cont_get_attr(0, cid, "owner").unwrap();
        exec(&mut sched, s);
        assert_eq!(v, b"ecmwf");
        let (names, s) = sys.cont_list_attrs(0, cid).unwrap();
        exec(&mut sched, s);
        assert_eq!(names, vec!["cycle", "owner"]);
        assert_eq!(
            sys.cont_get_attr(0, cid, "missing").unwrap_err(),
            DaosError::NoSuchKey
        );
    }

    #[test]
    fn object_listing_enumerates_oids() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut sys = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let mut created = Vec::new();
        for _ in 0..4 {
            let (oid, s) = sys.array_create(0, cid, ObjectClass::S1, 1 << 20).unwrap();
            exec(&mut sched, s);
            created.push(oid);
        }
        let (kv, s) = sys.kv_create(0, cid, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        created.push(kv);
        created.sort();
        let (listed, s) = sys.obj_list(0, cid).unwrap();
        exec(&mut sched, s);
        assert_eq!(listed, created);
    }

    /// Deploy over fewer servers than the topology holds, leaving spare
    /// hardware for online adds.
    fn elastic_system(
        topo_servers: usize,
        deploy: usize,
        clients: usize,
        mode: DataMode,
    ) -> (Scheduler, DaosSystem) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(topo_servers, clients).build(&mut sched);
        let sys = DaosSystem::deploy(&topo, &mut sched, deploy, mode);
        (sched, sys)
    }

    fn drive_migration(sched: &mut Scheduler, sys: &mut DaosSystem) -> usize {
        let mut waves = 0;
        while let Some(step) = sys.migration_wave(16) {
            exec(sched, step);
            waves += 1;
        }
        assert_eq!(sys.migration_pending(), 0);
        waves
    }

    #[test]
    fn online_add_server_rebalances_minimally() {
        let (mut sched, mut sys) = elastic_system(5, 4, 1, DataMode::Full);
        sys.enable_ledger();
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::SX, 1 << 16).unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(7);
        let mut data = vec![0u8; 1 << 20];
        rng.fill_bytes(&mut data);
        let s = sys
            .array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);
        let v0 = sys.pool().version();
        let rank = sys.add_server(&mut sched);
        assert_eq!(rank, 4);
        assert!(sys.pool().version() > v0);
        assert_eq!(sys.pool().server_count(), 5);
        // new targets serve but don't place yet
        assert_eq!(sys.pool().up_count(), 4 * sys.cal().targets_per_server);
        let report = sys.rebalance_plan();
        let total_members: usize = 5 * sys.cal().targets_per_server;
        // minimal movement: roughly 1/5th of the shard population moves,
        // certainly not all of it
        assert!(report.moves_planned > 0, "growth must move something");
        assert!(
            report.moves_planned < total_members / 2,
            "moved {} of {} members — not minimal",
            report.moves_planned,
            total_members
        );
        let waves = drive_migration(&mut sched, &mut sys);
        assert!(waves >= 1);
        sys.finish_rebalance();
        assert_eq!(sys.pool().up_count(), 5 * sys.cal().targets_per_server);
        // data survives the move and the new layout serves it
        let (r, s) = sys.array_read(0, cid, oid, 0, 1 << 20).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        assert!(sys.verify_durability(0).ok());
        assert!(sys.verify_redundancy().ok());
        let progress = sys.migration_progress();
        assert_eq!(progress.moves_done, report.moves_planned);
        assert!(progress.moved_bytes > 0.0);
    }

    #[test]
    fn drain_server_evacuates_and_retires() {
        let (mut sched, mut sys) = elastic_system(3, 3, 1, DataMode::Full);
        sys.enable_ledger();
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys
            .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
            .unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(9);
        let mut data = vec![0u8; 400_000];
        rng.fill_bytes(&mut data);
        let s = sys
            .array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap();
        exec(&mut sched, s);
        sys.drain_server(1);
        // drained targets still serve while migration runs
        let (r, s) = sys.array_read(0, cid, oid, 0, 400_000).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        let report = sys.rebalance_plan();
        assert!(report.moves_planned > 0);
        assert_eq!(report.moves_skipped, 0, "2 healthy servers can host RP_2");
        drive_migration(&mut sched, &mut sys);
        sys.finish_rebalance();
        // the drained server is retired and no live layout references it
        assert_eq!(sys.pool().up_count(), 2 * sys.cal().targets_per_server);
        for i in 0..sys.pool().total_targets() {
            let t = sys.pool().target_at(i);
            if t.server == 1 {
                assert!(!sys.pool().is_servable(t));
            }
        }
        assert!(sys.verify_durability(0).ok());
        assert!(sys.verify_redundancy().ok());
        let (r, s) = sys.array_read(0, cid, oid, 0, 400_000).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
    }

    #[test]
    fn destination_crash_mid_migration_loses_unreplicated_shard() {
        let (mut sched, mut sys) = elastic_system(2, 2, 1, DataMode::Full);
        sys.enable_ledger();
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = sys.array_create(0, cid, ObjectClass::S1, 1 << 16).unwrap();
        exec(&mut sched, s);
        let s = sys
            .array_write(0, cid, oid, 0, Payload::Bytes(vec![42u8; 100_000]))
            .unwrap();
        exec(&mut sched, s);
        let home = sys.containers[cid.0 as usize].as_ref().unwrap().objects[&oid]
            .layout
            .groups[0][0];
        sys.drain_server(home.server);
        let report = sys.rebalance_plan();
        assert!(report.moves_planned >= 1);
        // the migration destination dies before the wave ships
        let dst = sys.containers[cid.0 as usize].as_ref().unwrap().objects[&oid]
            .layout
            .groups[0][0];
        assert_ne!(dst.server, home.server);
        sys.crash_target(dst);
        // every move to the dead destination is dropped as stale
        assert!(sys.migration_wave(16).is_none() || sys.migration_progress().moves_dropped > 0);
        while let Some(step) = sys.migration_wave(16) {
            exec(&mut sched, step);
        }
        sys.finish_rebalance();
        // an unreplicated shard whose destination died is gone — the
        // durability oracle must name the loss
        let audit = sys.verify_durability(0);
        assert!(
            audit
                .violations
                .iter()
                .any(|v| v.oracle == OracleKind::AckedDurability),
            "expected an acked-durability violation, got: {:?}",
            audit.violations
        );
    }

    #[test]
    fn migration_resumes_after_crash_and_rebuild() {
        let (mut sched, mut sys) = elastic_system(4, 3, 1, DataMode::Full);
        sys.enable_ledger();
        let (cid, s) = sys.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(11);
        let mut oids = Vec::new();
        for _ in 0..6 {
            let (oid, s) = sys
                .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
                .unwrap();
            exec(&mut sched, s);
            let mut data = vec![0u8; 200_000];
            rng.fill_bytes(&mut data);
            let s = sys
                .array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
                .unwrap();
            exec(&mut sched, s);
            oids.push((oid, data));
        }
        sys.add_server(&mut sched);
        sys.drain_server(0);
        let report = sys.rebalance_plan();
        assert!(report.moves_planned > 0);
        // ship one wave, then a target crashes mid-migration
        if let Some(step) = sys.migration_wave(4) {
            exec(&mut sched, step);
        }
        let victim = TargetId {
            server: 1,
            target: 0,
        };
        sys.crash_target(victim);
        let (_rep, step) = sys.rebuild();
        exec(&mut sched, step);
        // migration resumes: stale moves (remapped by the rebuild or
        // aimed at the dead target) drop, the rest ship
        drive_migration(&mut sched, &mut sys);
        sys.finish_rebalance();
        for (oid, data) in &oids {
            // reads may observe the crash once, then go degraded
            let mut got = sys.array_read(0, cid, *oid, 0, data.len() as u64);
            while matches!(got, Err(DaosError::TargetDown)) {
                got = sys.array_read(0, cid, *oid, 0, data.len() as u64);
            }
            let (r, s) = got.unwrap();
            exec(&mut sched, s);
            assert_eq!(r.bytes().unwrap(), &data[..]);
        }
        assert!(sys.verify_durability(0).ok());
    }
}
