//! The process-workload interface the benchmark harness drives.
//!
//! All of the paper's benchmarks share one execution shape: `P` parallel
//! processes pinned across client nodes, each performing a setup step
//! (create its file/object/container), then — after a barrier — a
//! sequence of equally-sized I/O operations.  The harness times the
//! measured phase from the first operation's start to the last
//! operation's end, exactly the paper's bandwidth definition (§II).
//!
//! Benchmarks implement [`ProcWorkload`]; `benchkit` supplies the driver.

use simkit::Step;

/// Which phase a workload run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Write phase (always runs first in the paper's benchmarks).
    Write,
    /// Read phase over previously written data.
    Read,
}

/// A parallel benchmark workload.
pub trait ProcWorkload {
    /// Total parallel processes.
    fn procs(&self) -> usize;

    /// Client node a process runs on (processes are pinned evenly).
    fn node_of(&self, proc: usize) -> usize;

    /// Untimed preparation for a process (create files/objects/
    /// containers, open handles…).
    fn setup(&mut self, proc: usize) -> Step;

    /// Operations per process in the measured phase.
    fn ops_per_proc(&self) -> usize;

    /// Logical bytes moved by one operation (for bandwidth math).
    fn bytes_per_op(&self) -> f64;

    /// The `idx`-th measured operation of a process.
    fn op(&mut self, proc: usize, idx: usize) -> Step;

    /// Untimed cleanup for a process (flush buffers, close handles).
    /// Data written here still counts toward the phase's bytes if the
    /// workload buffers (the fdb POSIX backend does); report extra bytes
    /// via [`ProcWorkload::finalize_bytes`].
    fn finalize(&mut self, proc: usize) -> Step {
        let _ = proc;
        Step::Noop
    }

    /// Bytes flushed during finalize (per process), counted into the
    /// measured volume for buffered writers.
    fn finalize_bytes(&self) -> f64 {
        0.0
    }

    /// Whether the finalize step belongs inside the measured window
    /// (true for buffered writers whose last flush carries real data).
    fn finalize_in_window(&self) -> bool {
        false
    }

    /// Operations each process keeps in flight.  1 is synchronous I/O
    /// (IOR's default and the paper's runs); larger values model clients
    /// pipelining through the libdaos event-queue API.
    fn queue_depth(&self) -> usize {
        1
    }
}

/// Pin `procs` processes round-robin over `nodes` client nodes — the
/// paper pins benchmark processes evenly across cores/nodes.
pub fn pin_round_robin(procs: usize, nodes: usize) -> Vec<usize> {
    (0..procs).map(|p| p % nodes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_even() {
        let pins = pin_round_robin(10, 4);
        let mut counts = [0; 4];
        for &n in &pins {
            counts[n] += 1;
        }
        assert_eq!(counts, [3, 3, 2, 2]);
    }
}
