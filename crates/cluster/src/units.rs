//! Byte-size units used throughout the workspace.

/// One kibibyte in bytes.
pub const KIB: f64 = 1024.0;
/// One mebibyte in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Render a byte count as a human-readable size.
pub fn fmt_bytes(b: f64) -> String {
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Render a bandwidth (bytes/second) the way the paper's figures do.
pub fn fmt_bw(bps: f64) -> String {
    format!("{}/s", fmt_bytes(bps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_values() {
        assert_eq!(KIB, 1024.0);
        assert_eq!(MIB, 1048576.0);
        assert_eq!(GIB, 1073741824.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2.0 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(3.5 * MIB), "3.50 MiB");
        assert_eq!(fmt_bw(61.76 * GIB), "61.76 GiB/s");
    }
}
