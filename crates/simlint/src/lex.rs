//! A minimal Rust lexer for the stage-2 flow pass.
//!
//! Produces a flat token stream of identifiers, numbers and punctuation
//! with 1-based line numbers; comments, string/char literals and
//! lifetimes are consumed and dropped (their contents must never create
//! call edges or panic sites).  This is *not* a full Rust lexer — raw
//! identifiers, exotic literal suffixes and macro fragments are handled
//! loosely — but it is exact for the constructs the flow analyses read:
//! item keywords, paths, call parentheses, brace structure and index
//! brackets.  Std-only, same policy as the rest of the crate.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (prefix/suffix kept crudely: `0xff_u64` is one token).
    Num,
    /// Punctuation. Multi-character operators `::`, `->` and `=>` are
    /// fused into single tokens; everything else is one character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// If a raw/byte/byte-raw string literal prefix starts at `i`, return
/// `(index of the opening quote, hash count)`.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'r' {
            j += 1;
        }
    } else if b[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j, hashes))
    } else {
        None
    }
}

/// Lex `source` into a token stream.  Never fails: unrecognised bytes
/// (non-ASCII in code position, stray backslashes) are skipped.
pub fn lex(source: &str) -> Vec<Tok> {
    let b = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: consume to end of line (newline handled above).
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nesting like rustc.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if raw_string_open(b, i).is_some() => {
                // Raw / byte / byte-raw string: r"…", r#"…"#, b"…", br#"…"#.
                // Consume to the close quote followed by the same hash run.
                let Some((quote, hashes)) = raw_string_open(b, i) else {
                    i += 1; // guard guarantees Some; keep the lexer total
                    continue;
                };
                let mut j = quote + 1;
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && k < b.len() && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                // Ordinary string literal with escapes; may span lines.
                i += 1;
                while i < b.len() {
                    match b[i] {
                        // A `\<newline>` continuation escape still ends a
                        // source line — count it, or every token after the
                        // literal reports a line number short by one.
                        b'\\' => {
                            if i + 1 < b.len() && b[i + 1] == b'\n' {
                                line += 1;
                            }
                            i += 2;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && is_ident_start(b[i + 1]) && b[i + 2] != b'\'' {
                    // Lifetime: skip the tick and let the ident lex (it is
                    // harmless in the stream; parsers treat it as an ident).
                    i += 1;
                } else {
                    // Char literal like 'x'.
                    i += 2;
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b':' if i + 1 < b.len() && b[i + 1] == b':' => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            b'-' if i + 1 < b.len() && b[i + 1] == b'>' => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "->".to_string(),
                    line,
                });
                i += 2;
            }
            b'=' if i + 1 < b.len() && b[i + 1] == b'>' => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "=>".to_string(),
                    line,
                });
                i += 2;
            }
            c if c.is_ascii() => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => i += 1, // non-ASCII outside literals: skip
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_fused_operators() {
        assert_eq!(
            texts("fn f(x: u32) -> Foo::Bar { x => y }"),
            vec![
                "fn", "f", "(", "x", ":", "u32", ")", "->", "Foo", "::", "Bar", "{", "x", "=>",
                "y", "}"
            ]
        );
    }

    #[test]
    fn comments_and_strings_dropped() {
        assert_eq!(
            texts("a // unwrap() in a comment\nb /* HashMap */ c \"call(me)\" d"),
            vec!["a", "b", "c", "d"]
        );
        // Nested block comments.
        assert_eq!(texts("x /* a /* b */ c */ y"), vec!["x", "y"]);
    }

    #[test]
    fn raw_strings_dropped() {
        assert_eq!(texts("a r\"x.unwrap()\" b"), vec!["a", "b"]);
        assert_eq!(texts("a r#\"quote \" inside\"# b"), vec!["a", "b"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(texts("let c = 'x';"), vec!["let", "c", "=", ";"]);
        assert_eq!(texts("let c = '\\n';"), vec!["let", "c", "=", ";"]);
        // A lifetime keeps its identifier (harmless in the stream).
        assert_eq!(texts("fn f<'a>(x: &'a str)"), {
            vec![
                "fn", "f", "<", "a", ">", "(", "x", ":", "&", "a", "str", ")",
            ]
        });
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"a\nb\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn string_continuation_escape_advances_lines() {
        // `\<newline>` inside a literal elides the break from the string's
        // value but not from the source: the next token is on line 3.
        let toks = lex("let s = \"a\\\n b\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn numbers_are_single_tokens() {
        assert_eq!(texts("0xff_u64 + 12"), vec!["0xff_u64", "+", "12"]);
        // Range syntax does not glue into the number.
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
    }
}
