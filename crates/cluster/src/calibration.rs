//! Calibration constants for the simulated test system.
//!
//! Every tunable in the reproduction lives here, with its provenance.
//! Hardware numbers come straight from the paper (§II-B, §III-A); software
//! service rates and per-op overheads are calibrated so that the simulated
//! benchmarks land in the bandwidth regimes the paper reports, while all
//! *trends* (who saturates what, where scaling breaks) emerge from the
//! modelled mechanisms rather than from per-figure constants.

use crate::units::{GIB, KIB, MIB};

/// All model constants.  `Calibration::default()` is the paper's test
/// system; experiments that probe a knob (FUSE threads, PG count, …)
/// clone and modify it.
#[derive(Debug, Clone)]
pub struct Calibration {
    // ----- hardware (paper §II-B and §III-A) -----------------------------
    /// NVMe devices per server node (16 logical devices).
    pub nvme_devs_per_server: usize,
    /// Aggregate measured write bandwidth of one server's NVMe (3.86 GiB/s,
    /// §III-A `dd` measurement), divided evenly across devices at build
    /// time.
    // simlint::dim(bytes_per_sec)
    pub server_nvme_write_bw: f64,
    /// Aggregate measured read bandwidth of one server's NVMe (7 GiB/s).
    // simlint::dim(bytes_per_sec)
    pub server_nvme_read_bw: f64,
    /// Short-burst headroom of a single device over its sustained share
    /// of the node aggregate.  Server-side buffering (the WAL) and
    /// device-internal parallelism let one device absorb more than
    /// `aggregate/16` while the node-level pool enforces the measured
    /// aggregate; without this, queue-depth-1 workloads idle devices
    /// whenever placement is momentarily imbalanced and the whole model
    /// undershoots the paper's near-optimal utilisation.
    pub nvme_dev_burst: f64,
    /// Device access latency added per bulk I/O request (write).
    // simlint::dim(ns)
    pub nvme_write_lat_ns: u64,
    /// Latency of small writes, which DAOS absorbs in its write-ahead
    /// log (kept in DRAM on these VMs, §II-B).
    // simlint::dim(ns)
    pub small_write_lat_ns: u64,
    /// Requests at or above this size pay the bulk device latency.
    // simlint::dim(bytes)
    pub bulk_io_threshold: f64,
    /// Device access latency added per I/O request (read).
    // simlint::dim(ns)
    pub nvme_read_lat_ns: u64,
    /// NIC bandwidth per node and direction (50 Gbps = 6.25 GiB/s,
    /// confirmed by the paper's iperf measurement).
    // simlint::dim(bytes_per_sec)
    pub nic_bw: f64,
    /// Network round-trip latency between a client and a server process.
    // simlint::dim(ns)
    pub net_rtt_ns: u64,

    // ----- DAOS server ----------------------------------------------------
    /// DAOS targets per engine (one per NVMe device in the paper).
    pub targets_per_server: usize,
    /// Request-processing capacity of one target (ops/s).  Shapes the
    /// small-I/O (1 KiB) IOPS ceilings in Fig. 2.
    pub target_svc_iops: f64,
    /// Per-engine RPC/data processing bandwidth (bytes/s through an
    /// engine, both directions).  Slightly below the NIC: this is why the
    /// paper reads ~90 GiB/s from 16 servers instead of the 100 GiB/s
    /// network bound.
    // simlint::dim(bytes_per_sec)
    pub engine_xfer_bw: f64,
    /// Capacity of the pool's metadata/container service replica group
    /// (ops/s).  This group does **not** grow with the server count —
    /// the mechanism behind the HDF5-on-libdaos scaling collapse the
    /// paper attributes to container-per-process (§III-B, Fig. 4/5).
    pub pool_md_iops: f64,
    /// Per-server cost of a collective container create/open, ns.
    // simlint::dim(ns)
    pub cont_collective_ns_per_server: u64,

    // ----- DAOS client ----------------------------------------------------
    /// Client-side software overhead per libdaos operation.
    // simlint::dim(ns)
    pub libdaos_op_ns: u64,
    /// Additional client-side overhead per libdfs operation (namespace
    /// logic on top of libdaos).
    // simlint::dim(ns)
    pub dfs_op_ns: u64,
    /// Client-side overhead per intercepted (IL) read/write.
    // simlint::dim(ns)
    pub il_op_ns: u64,
    /// Client-side erasure-code encode throughput (bytes/s per process).
    // simlint::dim(bytes_per_sec)
    pub ec_encode_bw: f64,
    /// Bytes carried by a typical Key-Value index entry.
    // simlint::dim(bytes)
    pub kv_entry_bytes: f64,

    // ----- DFUSE ----------------------------------------------------------
    /// Application-visible latency of one FUSE round trip
    /// (syscall → kernel → user-space daemon → back).
    // simlint::dim(ns)
    pub fuse_crossing_ns: u64,
    /// FUSE daemon threads per mount (paper used 24).
    pub fuse_threads: usize,
    /// Event-queue threads per mount (paper used 12).
    pub fuse_eq_threads: usize,
    /// Requests/s one FUSE daemon thread can shepherd (kernel queue
    /// handling, context switches).  The node-level request pump
    /// capacity is `fuse_threads × this`, and it is what separates
    /// DFUSE from DFUSE+IL at 1 KiB (Fig. 2).
    pub fuse_thread_iops: f64,
    /// Kernel↔user data copy bandwidth per client node through the FUSE
    /// mount (bytes/s).
    // simlint::dim(bytes_per_sec)
    pub fuse_copy_bw: f64,
    /// Largest single FUSE request; larger application I/O fragments.
    // simlint::dim(bytes)
    pub fuse_max_req_bytes: f64,

    // ----- Lustre ----------------------------------------------------------
    /// Metadata service capacity (ops/s) of the single MDS node.  Caps
    /// fdb-hammer read on Lustre (Fig. 7): every field retrieval opens
    /// and closes files.
    pub mds_iops: f64,
    /// OSTs per OSS node (16, one per NVMe device).
    pub osts_per_server: usize,
    /// Request-processing capacity of one OST (ops/s).
    pub ost_svc_iops: f64,
    /// Client-side overhead per Lustre POSIX call (kernel fs client).
    // simlint::dim(ns)
    pub lustre_op_ns: u64,
    /// Extra round trips to acquire an extent lock on first access of a
    /// stripe by a client.
    pub lustre_lock_rtts: u32,

    // ----- Ceph -------------------------------------------------------------
    /// OSDs per node (16, one per NVMe device).
    pub osds_per_server: usize,
    /// Write amplification of the OSD WAL/journal on the device.
    pub osd_wal_factor: f64,
    /// Request-processing capacity of one OSD (ops/s).
    pub osd_svc_iops: f64,
    /// Per-OSD read-path processing bandwidth (crc, messenger copies).
    // simlint::dim(bytes_per_sec)
    pub osd_read_bw: f64,
    /// Per-OSD write-path processing bandwidth.
    // simlint::dim(bytes_per_sec)
    pub osd_write_bw: f64,
    /// Client-side overhead per librados operation.
    // simlint::dim(ns)
    pub rados_op_ns: u64,
    /// Recommended maximum RADOS object size (132 MiB in the paper);
    /// larger writes are rejected by the simulated cluster too.
    // simlint::dim(bytes)
    pub rados_max_object_bytes: f64,

    // ----- applications -----------------------------------------------------
    /// Per-client-node throughput ceiling of the HDF5 library itself
    /// (bytes/s): internal locking and buffer management serialise the
    /// many-process-per-node runs.  This phenomenological knob reproduces
    /// the paper's observation that HDF5 tops out at roughly half the
    /// IOR bandwidth regardless of how many servers are added (Fig. 3
    /// a/b, Fig. 5); it applies to every HDF5 driver (DFUSE+IL and the
    /// DAOS VOL), while the VOL's container-per-process metadata ceiling
    /// (`pool_md_iops`) additionally caps the libdaos flavour.
    // simlint::dim(bytes_per_sec)
    pub hdf5_client_bw: f64,
    /// HDF5: small metadata I/Os issued alongside each dataset write on
    /// the POSIX VFD.
    pub hdf5_md_ops_per_write: u32,
    /// HDF5: size of one metadata I/O.
    // simlint::dim(bytes)
    pub hdf5_md_bytes: f64,
    /// HDF5 POSIX VFD fragments data I/O into pieces of at most this size
    /// (chunked layout), multiplying FUSE request counts.
    // simlint::dim(bytes)
    pub hdf5_fragment_bytes: f64,
    /// FDB POSIX backend: writers buffer this much data client-side and
    /// flush in one large sequential write.
    // simlint::dim(bytes)
    pub fdb_flush_bytes: f64,
    /// Key-Value index operations per field archived/retrieved
    /// (paper: "an average of 10 Key-Value operations ... for each of the
    /// 10k objects").
    pub kv_ops_per_field: u32,

    // ----- statistics --------------------------------------------------------
    /// Per-op multiplicative jitter amplitude on client overheads; gives
    /// the three repetitions a realistic non-zero standard deviation.
    pub jitter_amp: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            // hardware — measured values from §III-A
            nvme_devs_per_server: 16,
            server_nvme_write_bw: 3.86 * GIB,
            server_nvme_read_bw: 7.0 * GIB,
            nvme_dev_burst: 2.0,
            nvme_write_lat_ns: 80_000,
            small_write_lat_ns: 10_000,
            bulk_io_threshold: 64.0 * KIB,
            nvme_read_lat_ns: 100_000,
            nic_bw: 6.25 * GIB,
            net_rtt_ns: 30_000,

            // DAOS server
            targets_per_server: 16,
            target_svc_iops: 60_000.0,
            engine_xfer_bw: 5.75 * GIB,
            pool_md_iops: 16_000.0,
            cont_collective_ns_per_server: 10_000,

            // DAOS client
            libdaos_op_ns: 5_000,
            dfs_op_ns: 3_000,
            il_op_ns: 7_000,
            ec_encode_bw: 8.0 * GIB,
            kv_entry_bytes: 512.0,

            // DFUSE
            fuse_crossing_ns: 70_000,
            fuse_threads: 24,
            fuse_eq_threads: 12,
            fuse_thread_iops: 1_200.0,
            fuse_copy_bw: 4.5 * GIB,
            fuse_max_req_bytes: 1.0 * MIB,

            // Lustre
            mds_iops: 180_000.0,
            osts_per_server: 16,
            ost_svc_iops: 30_000.0,
            lustre_op_ns: 12_000,
            lustre_lock_rtts: 1,

            // Ceph
            osds_per_server: 16,
            osd_wal_factor: 1.55,
            osd_svc_iops: 25_000.0,
            osd_read_bw: 430.0 * MIB,
            osd_write_bw: 400.0 * MIB,
            rados_op_ns: 10_000,
            rados_max_object_bytes: 132.0 * MIB,

            // applications
            hdf5_client_bw: 1.15 * GIB,
            hdf5_md_ops_per_write: 2,
            hdf5_md_bytes: 4.0 * KIB,
            hdf5_fragment_bytes: 256.0 * KIB,
            fdb_flush_bytes: 64.0 * MIB,
            kv_ops_per_field: 10,

            jitter_amp: 0.04,
        }
    }
}

impl Calibration {
    /// Write bandwidth of a single NVMe device.
    pub fn nvme_dev_write_bw(&self) -> f64 {
        self.server_nvme_write_bw / self.nvme_devs_per_server as f64
    }

    /// Read bandwidth of a single NVMe device.
    pub fn nvme_dev_read_bw(&self) -> f64 {
        self.server_nvme_read_bw / self.nvme_devs_per_server as f64
    }

    /// Ideal aggregate write bandwidth of `n` servers (the paper's
    /// "calculated optimum": SSD-bound).
    pub fn ideal_write_bw(&self, servers: usize) -> f64 {
        self.server_nvme_write_bw * servers as f64
    }

    /// Ideal aggregate read bandwidth of `n` servers (network-bound per
    /// §III-A: 6.25 GiB/s per server).
    pub fn ideal_read_bw(&self, servers: usize) -> f64 {
        self.nic_bw.min(self.server_nvme_read_bw) * servers as f64
    }

    /// A slightly perturbed copy of the calibration, modelling run-to-run
    /// variability of a real deployment (thermal/placement/noisy
    /// neighbours).  Used to give the three benchmark repetitions a
    /// realistic non-zero standard deviation without breaking the
    /// lock-step symmetry within one run.
    pub fn perturb(&self, rng: &mut simkit::SplitMix64) -> Calibration {
        let amp = self.jitter_amp;
        let mut c = self.clone();
        c.server_nvme_write_bw *= rng.jitter(amp * 0.5);
        c.server_nvme_read_bw *= rng.jitter(amp * 0.5);
        c.engine_xfer_bw *= rng.jitter(amp * 0.5);
        c.nic_bw *= rng.jitter(amp * 0.25);
        c.target_svc_iops *= rng.jitter(amp);
        c.pool_md_iops *= rng.jitter(amp);
        c.mds_iops *= rng.jitter(amp);
        c.ost_svc_iops *= rng.jitter(amp);
        c.osd_svc_iops *= rng.jitter(amp);
        c.osd_read_bw *= rng.jitter(amp);
        c.osd_write_bw *= rng.jitter(amp);
        c.fuse_thread_iops *= rng.jitter(amp);
        c.fuse_copy_bw *= rng.jitter(amp);
        c.hdf5_client_bw *= rng.jitter(amp);
        c.libdaos_op_ns = (c.libdaos_op_ns as f64 * rng.jitter(amp)) as u64;
        c.fuse_crossing_ns = (c.fuse_crossing_ns as f64 * rng.jitter(amp)) as u64;
        c.net_rtt_ns = (c.net_rtt_ns as f64 * rng.jitter(amp)) as u64;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hardware_numbers() {
        let c = Calibration::default();
        // §III-A: 3.86 GiB/s write, 7 GiB/s read per server; 16 devices.
        assert!((c.nvme_dev_write_bw() * 16.0 - 3.86 * GIB).abs() < 1.0);
        assert!((c.nvme_dev_read_bw() * 16.0 - 7.0 * GIB).abs() < 1.0);
        // §III-B: calculated optimum for 16 servers.
        assert!((c.ideal_write_bw(16) / GIB - 61.76).abs() < 0.01);
        assert!((c.ideal_read_bw(16) / GIB - 100.0).abs() < 0.01);
    }

    #[test]
    fn engine_bandwidth_between_ssd_write_and_nic() {
        let c = Calibration::default();
        assert!(c.engine_xfer_bw > c.server_nvme_write_bw);
        assert!(c.engine_xfer_bw < c.nic_bw);
    }
}
