//! Property tests for the max-min fair-share solver and the fluid engine.

use proptest::prelude::*;
use simkit::fairshare::FairShare;
use simkit::units::Rate;
use simkit::{run, OpId, ResourceId, Scheduler, Step, World};

/// Random scenario: capacities plus flows with 1..=4 distinct resources.
fn scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<u32>>)> {
    (2usize..8).prop_flat_map(|nres| {
        let caps = proptest::collection::vec(0.5f64..200.0, nres);
        let flow = proptest::collection::btree_set(0u32..nres as u32, 1..=nres.min(4))
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        let flows = proptest::collection::vec(flow, 1..24);
        (caps, flows)
    })
}

fn solve(caps: &[f64], flows: &[Vec<u32>]) -> Vec<f64> {
    let mut fs = FairShare::new();
    fs.begin(caps.len());
    for (i, path) in flows.iter().enumerate() {
        let p: Vec<ResourceId> = path.iter().map(|&r| ResourceId(r)).collect();
        fs.add_flow(i as u32, &p);
    }
    let caps: Vec<Rate> = caps.iter().map(|&c| Rate(c)).collect();
    fs.solve(&caps);
    let mut rates = vec![0.0; flows.len()];
    for (k, r) in fs.results() {
        rates[k as usize] = r.get();
    }
    rates
}

proptest! {
    /// No resource is driven above its capacity.
    #[test]
    fn capacities_respected((caps, flows) in scenario()) {
        let rates = solve(&caps, &flows);
        for (r, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(path, _)| path.contains(&(r as u32)))
                .map(|(_, rate)| *rate)
                .sum();
            prop_assert!(load <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {r} over capacity: {load} > {cap}");
        }
    }

    /// Every flow gets a strictly positive rate (all capacities > 0).
    #[test]
    fn rates_positive((caps, flows) in scenario()) {
        let rates = solve(&caps, &flows);
        for (i, rate) in rates.iter().enumerate() {
            prop_assert!(*rate > 0.0, "flow {i} starved: {rate}");
        }
    }

    /// Max-min condition: every flow crosses a saturated resource on
    /// which it has a maximal rate.  (This characterises the max-min
    /// fair allocation.)
    #[test]
    fn maxmin_bottleneck_condition((caps, flows) in scenario()) {
        let rates = solve(&caps, &flows);
        for (i, path) in flows.iter().enumerate() {
            let ok = path.iter().any(|&r| {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(p, _)| p.contains(&r))
                    .map(|(_, rate)| *rate)
                    .sum();
                let saturated = load >= caps[r as usize] * (1.0 - 1e-6);
                let max_on_r = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(p, _)| p.contains(&r))
                    .map(|(_, rate)| *rate)
                    .fold(0.0f64, f64::max);
                saturated && rates[i] >= max_on_r * (1.0 - 1e-6)
            });
            prop_assert!(ok, "flow {i} has no bottleneck: rate {}", rates[i]);
        }
    }

    /// Work conservation in the engine: pushing N transfers of equal size
    /// through a single resource takes exactly total/capacity seconds, no
    /// matter how arrivals are staggered.
    #[test]
    fn engine_work_conservation(
        n in 1usize..20,
        unit in 1.0f64..50.0,
        cap in 10.0f64..500.0,
        stagger_ns in 0u64..1000,
    ) {
        struct Last(simkit::SimTime);
        impl World for Last {
            fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
                self.0 = sched.now();
            }
        }
        let mut s = Scheduler::new();
        let r = s.add_resource("r", cap);
        for i in 0..n {
            s.submit_after(i as u64 * stagger_ns, Step::transfer(unit, [r]), OpId(i as u64));
        }
        let mut w = Last(simkit::SimTime::ZERO);
        run(&mut s, &mut w);
        // The resource is busy from the first arrival to the end; total
        // elapsed >= work/cap and <= work/cap + total stagger.
        let work = unit * n as f64;
        let t = w.0.as_secs_f64();
        prop_assert!(t >= work / cap - 1e-6, "finished impossibly fast: {t}");
        prop_assert!(
            t <= work / cap + (n as u64 * stagger_ns) as f64 / 1e9 + 1e-6,
            "resource idled: {t} vs {}", work / cap
        );
    }
}
