//! Rebuild: restoring redundancy after target exclusions.
//!
//! When targets are excluded (`dmg pool exclude` in real DAOS), objects
//! whose shard groups include a down target run *degraded* — replicated
//! reads fail over and erasure-coded reads reconstruct — until a rebuild
//! re-protects them.  [`crate::DaosSystem::rebuild`] scans every
//! container, picks a healthy replacement target for each affected shard
//! (from the object's own placement permutation, preserving fault-domain
//! spread), updates the layout, and returns an op chain that models the
//! server-to-server data movement: surviving data is read on its source
//! targets and written to the replacements.
//!
//! Unprotected shards (plain `S*`/`SX` data on a dead target) cannot be
//! rebuilt; they are reported as lost.

use crate::pool::{PoolMap, TargetId};
use std::collections::BTreeSet;

/// Outcome of a rebuild pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebuildReport {
    /// Objects examined across all containers.
    pub objects_scanned: usize,
    /// Shards moved to replacement targets.
    pub shards_rebuilt: usize,
    /// Logical bytes reconstructed and rewritten.
    // simlint::dim(bytes)
    pub bytes_moved: f64,
    /// Shards that had no surviving redundancy (data loss).
    pub shards_lost: usize,
}

impl RebuildReport {
    /// Publish the rebuild outcome into a telemetry registry as
    /// `daos.rebuild.*` counters recorded at `at`.  The wave-by-wave
    /// time series of rebuild traffic flows through the engine's
    /// span-open counters (`span.rebuild.*`); these totals carry the
    /// planning-level facts — shards lost, logical bytes re-protected —
    /// that spans cannot express.  No-op on a disabled registry.
    pub fn publish(&self, tel: &mut simkit::Telemetry, at: simkit::SimTime) {
        if !tel.is_enabled() {
            return;
        }
        for (name, value) in [
            ("daos.rebuild.objects_scanned", self.objects_scanned as u64),
            ("daos.rebuild.shards_rebuilt", self.shards_rebuilt as u64),
            // simlint::dim(bytes)
            ("daos.rebuild.bytes_moved", self.bytes_moved as u64),
            ("daos.rebuild.shards_lost", self.shards_lost as u64),
        ] {
            let id = tel.counter(name);
            tel.counter_add(id, at, value);
        }
    }
}

/// Pick a replacement target for a group: up, not already in the group,
/// preferring servers not yet represented in the group (fault domains).
pub(crate) fn pick_replacement(
    pool: &PoolMap,
    group: &[TargetId],
    down: TargetId,
) -> Option<TargetId> {
    let candidates = pool.up_targets();
    // Set lookups instead of `contains` scans inside the candidate loop:
    // the scan is O(candidates) with O(log width) membership tests
    // rather than O(candidates × width).  `down`'s own slot stays
    // re-pickable (it is being replaced), matching the original scan.
    let in_group: BTreeSet<TargetId> = group.iter().copied().filter(|&t| t != down).collect();
    // prefer a server that the group does not already use
    let used_servers: BTreeSet<u16> = group
        .iter()
        .filter(|t| **t != down && pool.is_up(**t))
        .map(|t| t.server)
        .collect();
    candidates
        .iter()
        .find(|t| !in_group.contains(t) && !used_servers.contains(&t.server))
        .or_else(|| candidates.iter().find(|t| !in_group.contains(t)))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_prefers_fresh_server() {
        let mut pool = PoolMap::new(3, 4);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        let group = vec![
            down,
            TargetId {
                server: 1,
                target: 2,
            },
        ];
        let r = pick_replacement(&pool, &group, down).unwrap();
        assert_ne!(r.server, 1, "avoid the surviving replica's server");
        assert!(pool.is_up(r));
    }

    #[test]
    fn replacement_falls_back_when_servers_exhausted() {
        let mut pool = PoolMap::new(2, 2);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        // group uses both servers already
        let group = vec![
            down,
            TargetId {
                server: 0,
                target: 1,
            },
            TargetId {
                server: 1,
                target: 0,
            },
        ];
        let r = pick_replacement(&pool, &group, down).unwrap();
        assert!(pool.is_up(r));
        assert!(!group.contains(&r));
    }

    /// The original O(candidates × width) implementation, kept as the
    /// oracle for the set-based rewrite.
    fn pick_replacement_reference(
        pool: &PoolMap,
        group: &[TargetId],
        down: TargetId,
    ) -> Option<TargetId> {
        let candidates = pool.up_targets();
        let in_group = |t: &TargetId| group.contains(t) && *t != down;
        let used_servers: Vec<u16> = group
            .iter()
            .filter(|t| **t != down && pool.is_up(**t))
            .map(|t| t.server)
            .collect();
        candidates
            .iter()
            .find(|t| !in_group(t) && !used_servers.contains(&t.server))
            .or_else(|| candidates.iter().find(|t| !in_group(t)))
            .copied()
    }

    #[test]
    fn set_based_scan_matches_reference_on_large_pool() {
        // 16 servers × 96 targets, a mix of exclusions, and shard groups
        // drawn from real layouts: the optimised scan must pick exactly
        // the replacements the original scan picked.
        use crate::class::ObjectClass;
        use crate::oid::OidAllocator;
        let mut pool = PoolMap::new(16, 96);
        pool.exclude_server(3);
        for i in 0..40u16 {
            pool.exclude(TargetId {
                server: (i * 7) % 16,
                target: (i * 13) % 96,
            });
        }
        let mut alloc = OidAllocator::new();
        let mut checked = 0;
        for class in [ObjectClass::RP_2, ObjectClass::RP_3, ObjectClass::EC_4P2] {
            for _ in 0..32 {
                let oid = alloc.next(class, 0);
                let layout = pool.layout(&oid, class);
                for group in &layout.groups {
                    // treat each member in turn as the down shard
                    // (as rebuild does after further exclusions)
                    for &down in group {
                        let got = pick_replacement(&pool, group, down);
                        let want = pick_replacement_reference(&pool, group, down);
                        assert_eq!(got, want, "group {group:?} down {down:?}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000, "exercised {checked} cases");
    }

    #[test]
    fn no_replacement_when_pool_exhausted() {
        let mut pool = PoolMap::new(1, 2);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        let group = vec![
            down,
            TargetId {
                server: 0,
                target: 1,
            },
        ];
        assert_eq!(pick_replacement(&pool, &group, down), None);
    }
}
