//! IOR engine over every backend at toy scale, exercised directly
//! (without the benchkit driver) to pin per-backend semantics.

use cluster::bench::{Phase, ProcWorkload};
use cluster::{ClusterSpec, GIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use daos_dfs::{Dfs, DfsOpts};
use daos_dfuse::{DfuseMount, DfuseOpts};
use hdf5_lite::H5Runtime;
use ior_bench::{Ior, IorBackend, IorConfig};
use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
use simkit::{run, OpId, Scheduler, SimTime, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Last(SimTime);
impl World for Last {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn drive(sched: &mut Scheduler, ior: &mut Ior, procs: usize, ops: usize) -> f64 {
    for p in 0..procs {
        let s = ior.setup(p);
        sched.submit(s, OpId(p as u64));
    }
    run(sched, &mut Last(SimTime::ZERO));
    let t0 = sched.now();
    for p in 0..procs {
        for i in 0..ops {
            let s = ior.op(p, i);
            sched.submit(s, OpId(p as u64));
            run(sched, &mut Last(SimTime::ZERO));
        }
    }
    sched.now().secs_since(t0)
}

#[test]
fn dfuse_backend_write_read() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 2).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Last(SimTime::ZERO));
    let daos = Rc::new(RefCell::new(daos));
    let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Last(SimTime::ZERO));
    let mount = DfuseMount::mount(dfs, &mut sched, DfuseOpts::default());
    let mut ior = Ior::new(IorConfig::new(4, 2, 6), IorBackend::Posix(Box::new(mount)));
    let w = drive(&mut sched, &mut ior, 4, 6);
    ior.set_phase(Phase::Read);
    let r = drive(&mut sched, &mut ior, 4, 6);
    assert!(w > 0.0 && r > 0.0);
    let bw = (4.0 * 6.0 * (1u64 << 20) as f64) / w;
    assert!(bw < 2.0 * 3.86 * GIB * 1.01, "within hardware bounds");
}

#[test]
fn hdf5_posix_backend_round_trips_datasets() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Last(SimTime::ZERO));
    let daos = Rc::new(RefCell::new(daos));
    let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Last(SimTime::ZERO));
    let rt = H5Runtime::new(&mut sched, 1, &topo.cal);
    let mount = DfuseMount::mount(dfs, &mut sched, DfuseOpts::with_interception());
    let mut ior = Ior::new(
        IorConfig::new(2, 1, 5),
        IorBackend::Hdf5Posix {
            rt,
            fs: Box::new(mount),
        },
    );
    let w = drive(&mut sched, &mut ior, 2, 5);
    ior.set_phase(Phase::Read);
    let r = drive(&mut sched, &mut ior, 2, 5);
    assert!(w > 0.0 && r > 0.0, "both phases progressed");
}

#[test]
fn lustre_backend_shared_file_mode() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 2).build(&mut sched);
    let fs = LustreSystem::deploy(
        &topo,
        &mut sched,
        2,
        LustreDataMode::Sized,
        StripeOpts {
            count: 8,
            size: 1 << 20,
        },
    );
    let mut cfg = IorConfig::new(4, 2, 6);
    cfg.file_per_proc = false; // single shared file
    let mut ior = Ior::new(cfg, IorBackend::Posix(Box::new(fs)));
    let w = drive(&mut sched, &mut ior, 4, 6);
    ior.set_phase(Phase::Read);
    let r = drive(&mut sched, &mut ior, 4, 6);
    assert!(w > 0.0 && r > 0.0);
}

#[test]
fn daos_backend_respects_object_class() {
    let mut sched = Scheduler::with_monitor();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Last(SimTime::ZERO));
    let daos = Rc::new(RefCell::new(daos));
    let mut ior = Ior::new(
        IorConfig::new(1, 1, 8),
        IorBackend::Daos {
            daos,
            cid,
            oclass: ObjectClass::EC_2P1,
        },
    );
    drive(&mut sched, &mut ior, 1, 8);
    // EC 2+1 must have written 1.5x the logical bytes to the devices
    let total: f64 = topo
        .servers
        .iter()
        .flat_map(|s| s.nvme_w.iter())
        .map(|&r| sched.monitor().units(r))
        .sum();
    let logical = 8.0 * (1u64 << 20) as f64;
    assert!(
        (total - 1.5 * logical).abs() < 1.0,
        "EC amplification: {total} vs {}",
        1.5 * logical
    );
}
