//! Print the replay digest and bandwidths for every paper scenario.
//!
//! Used to prove refactors digest-neutral: capture this output before
//! and after a change and diff it — any drift means the event schedule
//! moved, not just the code.

use benchkit::{replay_all, RunSpec};
use cluster::Calibration;

fn main() {
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 12;
    let reports = replay_all(&spec, &Calibration::default());
    for r in &reports {
        println!(
            "{:<16} digest={:#018x} det={} bw={:?}",
            r.scenario.name(),
            r.digests[0],
            r.deterministic(),
            r.bandwidths[0],
        );
    }
}
