//! digest-taint fixture: one covered mutator, one stray mutator.

// simlint::sim_state — replay-visible fixture state
pub struct Pool {
    pub used: u64,
}

impl Pool {
    /// Reachable from the digest root below: clean.
    pub fn alloc(&mut self, n: u64) {
        self.used += n;
    }

    /// Mutates sim state but no digest root reaches it: finding.
    pub fn leak(&mut self, n: u64) {
        self.used += n;
    }

    /// Not a mutator (shared receiver): never flagged.
    pub fn used(&self) -> u64 {
        self.used
    }
}

// simlint::digest_root — fixture replay fold
pub fn fold_digest(pool: &mut Pool) -> u64 {
    pool.alloc(1);
    pool.used()
}
