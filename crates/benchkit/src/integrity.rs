//! The integrity scenario family: bit-rot chaos against the end-to-end
//! checksum machinery.
//!
//! Three named races, each driven by a seeded, hand-shaped
//! [`FaultPlan`] (deterministic per `(scenario, seed)`, archivable and
//! ddmin-shrinkable like any other schedule):
//!
//! * [`IntegrityScenario::ScrubReadRace`] — several rotten copies
//!   planted across the read window of an `RP_2` run while the
//!   background scrubber makes one throttled pass over the same disks:
//!   whoever reaches a rotten chunk first (foreground verified read or
//!   scrub wave) must detect and repair it, and nobody may serve the
//!   bad bytes;
//! * [`IntegrityScenario::RotUnderRebalance`] — rot lands while a
//!   grow-and-drain rebalance is migrating shards, so verified reads
//!   repair extents whose redundancy groups are mid-move;
//! * [`IntegrityScenario::RotBeyondRedundancy`] — both copies of the
//!   same `RP_2` unit rot.  The *planted-violation* scenario: the read
//!   path must refuse ([`daos_core::DaosError::BadChecksum`], absorbed
//!   by the driver as an unavailable read) and the durability oracle
//!   must deliver a loud [`OracleKind::Corruption`] verdict.  A green
//!   oracle here means the integrity machinery served or masked
//!   corrupt data — exactly what [`integrity_case_ok`] fails.
//!
//! Verdict machinery — double-run determinism folds, schedule archiving
//! via [`crate::chaos::schedule_json`], shrinking — is shared with the
//! chaos module.

use crate::chaos::{determinism_violation, ChaosVerdict, SwarmReport};
use crate::faulted::{run_faulted_with, FaultedOpts, FaultedScenario, PlanSource};
use crate::rebalance::{run_rebalance_with, RebalanceOpts, RebalanceScenario};
use crate::scenarios::RunSpec;
use cluster::Calibration;
use daos_core::{CsumStats, DataMode, OracleKind, OracleReport, ScrubReport, Violation};
use simkit::{shrink, FaultAction, FaultPlan, Json, ShrinkOutcome, SimTime, SplitMix64};

/// One millisecond in nanoseconds (plan-building readability).
const MS: u64 = 1_000_000;

/// Rotten copies planted by the scrub-read-race schedule.
const RACE_ROTS: u64 = 4;

/// The bit-rot benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntegrityScenario {
    /// `RP_2` reads race one background scrub pass over freshly rotten
    /// chunks; every detection ends in a transparent repair.
    ScrubReadRace,
    /// Rot lands mid-migration during a grow-and-drain rebalance.
    RotUnderRebalance,
    /// Both `RP_2` copies of one unit rot: repair is impossible, the
    /// read refuses, and the durability oracle reports `Corruption`.
    RotBeyondRedundancy,
}

impl IntegrityScenario {
    /// Every integrity scenario, in presentation order.
    pub const ALL: [IntegrityScenario; 3] = [
        IntegrityScenario::ScrubReadRace,
        IntegrityScenario::RotUnderRebalance,
        IntegrityScenario::RotBeyondRedundancy,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            IntegrityScenario::ScrubReadRace => "integrity/scrub-read-race",
            IntegrityScenario::RotUnderRebalance => "integrity/rot-under-rebalance",
            IntegrityScenario::RotBeyondRedundancy => "integrity/rot-beyond-redundancy",
        }
    }
}

/// The sweep point the integrity family runs at: the chaos shape (small
/// ops, `Full` data mode so rot flips real bytes).
pub fn default_integrity_spec() -> RunSpec {
    crate::chaos::default_chaos_spec()
}

/// The seeded failure schedule for one integrity case, event times
/// relative to the write→read phase boundary.
pub fn integrity_plan(scen: IntegrityScenario, seed: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed ^ 0x1badb002);
    let mut plan = FaultPlan::new();
    match scen {
        IntegrityScenario::ScrubReadRace => {
            // several single-copy rots spread over the early read
            // window, all on copy 0: two random loci may resolve to the
            // same unit, and pinning the shard keeps such a collision
            // within redundancy (shard diversity is the
            // beyond-redundancy scenario's job)
            for i in 0..RACE_ROTS {
                plan.at(
                    SimTime(i * MS / 2 + rng.next_below(MS / 2)),
                    FaultAction::BitRot {
                        locus: rng.next_u64(),
                        shard: 0,
                    },
                );
            }
        }
        IntegrityScenario::RotUnderRebalance => {
            // the builtin grow-and-drain shape with rot landing after
            // the first waves have started moving shards
            plan.at(
                SimTime(MS),
                FaultAction::AddServer {
                    server: default_integrity_spec().servers as u64,
                },
            );
            plan.at(SimTime(2 * MS), FaultAction::DrainServer { server: 0 });
            // copy 0 only, for the same collision-safety reason as the
            // scrub/read race
            for i in 0..2u64 {
                plan.at(
                    SimTime(3 * MS + i * MS + rng.next_below(MS)),
                    FaultAction::BitRot {
                        locus: rng.next_u64(),
                        shard: 0,
                    },
                );
            }
        }
        IntegrityScenario::RotBeyondRedundancy => {
            // same locus, both shards, 1 ns apart: a verified read
            // slipping between the two rots would repair the first and
            // turn the pair back into two single-copy rots, so the
            // second must land before any read can reach the unit
            let locus = rng.next_u64();
            let at = SimTime(MS + rng.next_below(MS));
            plan.at(at, FaultAction::BitRot { locus, shard: 0 });
            plan.at(SimTime(at.0 + 1), FaultAction::BitRot { locus, shard: 1 });
        }
    }
    plan
}

/// One integrity case verdict: the shared chaos verdict plus the
/// checksum/scrub activity the invariants are judged against.
#[derive(Debug, Clone)]
pub struct IntegrityVerdict {
    /// Oracle + determinism verdict, archivable schedule included.
    pub chaos: ChaosVerdict,
    /// Checksum activity of the first run (post-audit snapshot).
    pub csum: CsumStats,
    /// Scrubber progress of the first run, when the scenario scrubs.
    pub scrub: Option<ScrubReport>,
}

impl IntegrityVerdict {
    /// One status line, integrity counters included.
    pub fn render_line(&self) -> String {
        format!(
            "{}  detected {} repaired {} unrepairable {} served_corrupt {}",
            self.chaos.render_line(),
            self.csum.detected,
            self.csum.repaired,
            self.csum.unrepairable,
            self.csum.served_corrupt,
        )
    }

    /// The per-case row of the `integrity.json` artifact.
    pub fn to_json(&self) -> Json {
        let scrub = self.scrub.unwrap_or_default();
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.chaos.scenario.clone())),
            ("seed".into(), Json::num_u64(self.chaos.seed)),
            ("ok".into(), Json::Bool(self.passed())),
            ("verified".into(), Json::num_u64(self.csum.verified)),
            ("detected".into(), Json::num_u64(self.csum.detected)),
            ("repaired".into(), Json::num_u64(self.csum.repaired)),
            (
                "repaired_bytes".into(),
                Json::num_u64(self.csum.repaired_bytes),
            ),
            ("unrepairable".into(), Json::num_u64(self.csum.unrepairable)),
            (
                "served_corrupt".into(),
                Json::num_u64(self.csum.served_corrupt),
            ),
            ("scrub_units".into(), Json::num_u64(scrub.units_scanned)),
            ("scrub_passes".into(), Json::num_u64(scrub.passes)),
            (
                "violations".into(),
                Json::num_u64(self.chaos.oracle.violations.len() as u64),
            ),
            (
                "digest".into(),
                Json::Str(format!("{:#018x}", self.chaos.digest)),
            ),
        ])
    }

    /// Scenario-aware pass check (see [`integrity_case_ok`]).
    pub fn passed(&self) -> bool {
        let scen = IntegrityScenario::ALL
            .into_iter()
            .find(|s| s.name() == self.chaos.scenario);
        match scen {
            Some(s) => integrity_case_ok(s, self),
            None => self.chaos.passed(),
        }
    }
}

/// Scenario-aware verdict: the repairable scenarios must come back
/// green with nonzero repair activity; the planted rot-beyond-redundancy
/// case must fail **loudly** — at least one violation, every violation a
/// [`OracleKind::Corruption`], and no determinism divergence hiding in
/// the report.  Corrupt bytes are never served, in either regime.
pub fn integrity_case_ok(scen: IntegrityScenario, v: &IntegrityVerdict) -> bool {
    if v.csum.served_corrupt != 0 {
        return false;
    }
    match scen {
        IntegrityScenario::ScrubReadRace | IntegrityScenario::RotUnderRebalance => {
            v.chaos.passed() && v.csum.detected >= 1 && v.csum.repaired >= 1
        }
        IntegrityScenario::RotBeyondRedundancy => {
            !v.chaos.oracle.violations.is_empty()
                && v.chaos
                    .oracle
                    .violations
                    .iter()
                    .all(|viol| viol.oracle == OracleKind::Corruption)
                && v.csum.unrepairable >= 1
        }
    }
}

/// Run one integrity case under an explicit schedule, twice from fresh
/// state, folding a determinism check over the two digests — the replay
/// and shrink entry point ([`run_integrity_case`] is this plus plan
/// generation).
pub fn run_planned_integrity_case(
    spec: &RunSpec,
    scen: IntegrityScenario,
    cal: &Calibration,
    seed: u64,
    plan: FaultPlan,
) -> IntegrityVerdict {
    let (mut oracle, csum, scrub, digest_a, digest_b) = match scen {
        IntegrityScenario::RotUnderRebalance => {
            let opts = RebalanceOpts {
                plan: PlanSource::Fixed(plan.clone()),
                mode: DataMode::Full,
                oracles: true,
                ..RebalanceOpts::default()
            };
            let first = run_rebalance_with(spec, RebalanceScenario::IorEasyRp2, cal, &opts);
            let second = run_rebalance_with(spec, RebalanceScenario::IorEasyRp2, cal, &opts);
            (
                first.oracles.clone().unwrap_or_default(),
                first.csum,
                None,
                first.digest,
                second.digest,
            )
        }
        IntegrityScenario::ScrubReadRace | IntegrityScenario::RotBeyondRedundancy => {
            let opts = FaultedOpts {
                plan: PlanSource::Fixed(plan.clone()),
                mode: DataMode::Full,
                oracles: true,
                scrub: scen == IntegrityScenario::ScrubReadRace,
                tolerate_unavailable: scen == IntegrityScenario::RotBeyondRedundancy,
                ..FaultedOpts::default()
            };
            let (first, _) = run_faulted_with(spec, FaultedScenario::IorEasyRp2, cal, &opts);
            let (second, _) = run_faulted_with(spec, FaultedScenario::IorEasyRp2, cal, &opts);
            (
                first.oracles.clone().unwrap_or_default(),
                first.csum,
                first.scrub,
                first.digest,
                second.digest,
            )
        }
    };
    if digest_a != digest_b {
        oracle
            .violations
            .push(determinism_violation(scen.name(), digest_a, digest_b));
    }
    IntegrityVerdict {
        chaos: ChaosVerdict {
            scenario: scen.name().to_string(),
            seed,
            plan,
            oracle,
            digest: digest_a,
        },
        csum,
        scrub,
    }
}

/// Run one integrity chaos case: build the seed's schedule and run it
/// as a planned case.
pub fn run_integrity_case(
    spec: &RunSpec,
    scen: IntegrityScenario,
    cal: &Calibration,
    seed: u64,
) -> IntegrityVerdict {
    run_planned_integrity_case(spec, scen, cal, seed, integrity_plan(scen, seed))
}

/// Swarm the integrity family: every scenario under every seed, judged
/// by [`integrity_case_ok`] (the planted rot-beyond-redundancy cases
/// count as *failures of the swarm* when they come back green).
pub fn run_integrity_swarm(
    spec: &RunSpec,
    cal: &Calibration,
    seeds: &[u64],
) -> (SwarmReport, Vec<IntegrityVerdict>) {
    let mut report = SwarmReport::default();
    let mut verdicts = Vec::new();
    for &seed in seeds {
        for scen in IntegrityScenario::ALL {
            let v = run_integrity_case(spec, scen, cal, seed);
            let mut chaos = v.chaos.clone();
            if !v.passed() && chaos.oracle.ok() {
                // a green oracle that should have screamed (or missing
                // repair activity): surface it as an explicit violation
                // so the shared swarm report renders the failure
                chaos.oracle.violations.push(Violation {
                    oracle: OracleKind::Corruption,
                    subject: scen.name().to_string(),
                    detail: format!(
                        "integrity expectation unmet: detected {} repaired {} \
                         unrepairable {} served_corrupt {}",
                        v.csum.detected,
                        v.csum.repaired,
                        v.csum.unrepairable,
                        v.csum.served_corrupt
                    ),
                });
            } else if v.passed() && !chaos.oracle.ok() {
                // expected loud failure: the case is green by design
                chaos.oracle = OracleReport::default();
                chaos.oracle.checked_groups += 1;
            }
            report.verdicts.push(chaos);
            verdicts.push(v);
        }
    }
    (report, verdicts)
}

/// Shrink an *interesting* integrity schedule to a minimal reproducer.
/// For the repairable scenarios the preserved signature is the
/// unexpected failure (`!`[`integrity_case_ok`]); for the planted
/// rot-beyond-redundancy scenario it is the loud corruption verdict
/// itself — the minimal schedule that still makes the oracle scream.
/// Re-establish the final verdict with [`run_planned_integrity_case`].
pub fn shrink_failing_integrity(
    spec: &RunSpec,
    scen: IntegrityScenario,
    cal: &Calibration,
    seed: u64,
    plan: &FaultPlan,
) -> ShrinkOutcome {
    shrink(plan, |candidate| {
        let v = run_planned_integrity_case(spec, scen, cal, seed, candidate.clone());
        match scen {
            IntegrityScenario::ScrubReadRace | IntegrityScenario::RotUnderRebalance => {
                !integrity_case_ok(scen, &v)
            }
            IntegrityScenario::RotBeyondRedundancy => {
                !v.chaos.oracle.violations.is_empty()
                    && v.chaos
                        .oracle
                        .violations
                        .iter()
                        .all(|viol| viol.oracle == OracleKind::Corruption)
            }
        }
    })
}

/// Rerun an archived integrity-family schedule: resolve the scenario
/// against [`IntegrityScenario::ALL`] and replay the stored plan at the
/// stored deployment shape.
pub fn replay_archived_integrity(
    arch: &crate::chaos::ArchivedSchedule,
    cal: &Calibration,
) -> Result<IntegrityVerdict, String> {
    let scen = IntegrityScenario::ALL
        .into_iter()
        .find(|s| s.name() == arch.scenario)
        .ok_or_else(|| format!("unknown integrity scenario {:?}", arch.scenario))?;
    Ok(run_planned_integrity_case(
        &arch.spec,
        scen,
        cal,
        arch.seed,
        arch.plan.clone(),
    ))
}

/// Render integrity verdicts as the `integrity.json` artifact (stable
/// field order, trailing newline).
pub fn render_integrity_json(verdicts: &[IntegrityVerdict]) -> String {
    let mut s = Json::Arr(verdicts.iter().map(IntegrityVerdict::to_json).collect()).render();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RunSpec {
        let mut spec = default_integrity_spec();
        spec.ops_per_proc = 8;
        spec
    }

    #[test]
    fn scrub_read_race_repairs_everything() {
        let v = run_integrity_case(
            &tiny_spec(),
            IntegrityScenario::ScrubReadRace,
            &Calibration::default(),
            3,
        );
        assert!(v.passed(), "{}", v.render_line());
        assert!(v.csum.detected >= 1, "planted rot went undetected");
        assert!(v.csum.repaired >= 1);
        assert_eq!(v.csum.served_corrupt, 0);
        assert_eq!(v.csum.unrepairable, 0, "single-copy rot always repairs");
        let scrub = v.scrub.expect("scenario scrubs");
        assert_eq!(scrub.passes, 1, "exactly one full scrub pass");
        assert!(scrub.units_scanned > 0);
    }

    #[test]
    fn rot_beyond_redundancy_fails_loudly_and_shrinks() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let v = run_integrity_case(&spec, IntegrityScenario::RotBeyondRedundancy, &cal, 5);
        assert!(v.passed(), "loud corruption expected:\n{}", v.render_line());
        assert!(!v.chaos.oracle.ok(), "the oracle must scream");
        assert_eq!(v.csum.served_corrupt, 0, "refused, not served");
        // the two-event plan is already minimal: ddmin keeps both rots
        let outcome = shrink_failing_integrity(
            &spec,
            IntegrityScenario::RotBeyondRedundancy,
            &cal,
            5,
            &v.chaos.plan,
        );
        assert!(outcome.reproduced);
        assert_eq!(
            outcome.plan.len(),
            2,
            "both rots are load-bearing: {:?}",
            outcome.plan
        );
    }

    #[test]
    fn integrity_schedule_archives_and_replays_identically() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let v = run_integrity_case(&spec, IntegrityScenario::ScrubReadRace, &cal, 9);
        let json =
            crate::chaos::schedule_json(&v.chaos.scenario, v.chaos.seed, &spec, &v.chaos.plan);
        let arch = crate::chaos::parse_schedule(&json).expect("parses");
        let replayed = replay_archived_integrity(&arch, &cal).expect("replays");
        assert_eq!(replayed.chaos.digest, v.chaos.digest);
        assert_eq!(replayed.csum, v.csum);
        assert_eq!(replayed.scrub, v.scrub);
    }
}
