//! Rebuild: restoring redundancy after target exclusions.
//!
//! When targets are excluded (`dmg pool exclude` in real DAOS), objects
//! whose shard groups include a down target run *degraded* — replicated
//! reads fail over and erasure-coded reads reconstruct — until a rebuild
//! re-protects them.  [`crate::DaosSystem::rebuild`] scans every
//! container, picks a healthy replacement target for each affected shard
//! (from the object's own placement permutation, preserving fault-domain
//! spread), updates the layout, and returns an op chain that models the
//! server-to-server data movement: surviving data is read on its source
//! targets and written to the replacements.
//!
//! Unprotected shards (plain `S*`/`SX` data on a dead target) cannot be
//! rebuilt; they are reported as lost.

use crate::pool::{PoolMap, TargetId};

/// Outcome of a rebuild pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebuildReport {
    /// Objects examined across all containers.
    pub objects_scanned: usize,
    /// Shards moved to replacement targets.
    pub shards_rebuilt: usize,
    /// Logical bytes reconstructed and rewritten.
    pub bytes_moved: f64,
    /// Shards that had no surviving redundancy (data loss).
    pub shards_lost: usize,
}

/// Pick a replacement target for a group: up, not already in the group,
/// preferring servers not yet represented in the group (fault domains).
pub(crate) fn pick_replacement(
    pool: &PoolMap,
    group: &[TargetId],
    down: TargetId,
) -> Option<TargetId> {
    let candidates = pool.up_targets();
    let in_group = |t: &TargetId| group.contains(t) && *t != down;
    // prefer a server that the group does not already use
    let used_servers: Vec<u16> = group
        .iter()
        .filter(|t| **t != down && pool.is_up(**t))
        .map(|t| t.server)
        .collect();
    candidates
        .iter()
        .find(|t| !in_group(t) && !used_servers.contains(&t.server))
        .or_else(|| candidates.iter().find(|t| !in_group(t)))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_prefers_fresh_server() {
        let mut pool = PoolMap::new(3, 4);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        let group = vec![
            down,
            TargetId {
                server: 1,
                target: 2,
            },
        ];
        let r = pick_replacement(&pool, &group, down).unwrap();
        assert_ne!(r.server, 1, "avoid the surviving replica's server");
        assert!(pool.is_up(r));
    }

    #[test]
    fn replacement_falls_back_when_servers_exhausted() {
        let mut pool = PoolMap::new(2, 2);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        // group uses both servers already
        let group = vec![
            down,
            TargetId {
                server: 0,
                target: 1,
            },
            TargetId {
                server: 1,
                target: 0,
            },
        ];
        let r = pick_replacement(&pool, &group, down).unwrap();
        assert!(pool.is_up(r));
        assert!(!group.contains(&r));
    }

    #[test]
    fn no_replacement_when_pool_exhausted() {
        let mut pool = PoolMap::new(1, 2);
        let down = TargetId {
            server: 0,
            target: 0,
        };
        pool.exclude(down);
        let group = vec![
            down,
            TargetId {
                server: 0,
                target: 1,
            },
        ];
        assert_eq!(pick_replacement(&pool, &group, down), None);
    }
}
