//! Instantiation of cluster hardware as scheduler resources.

use crate::calibration::Calibration;
use crate::spec::ClusterSpec;
use simkit::{ResourceId, Scheduler};

/// Hardware resources of one storage-server node.
#[derive(Debug, Clone)]
pub struct ServerNode {
    /// Outbound NIC direction (server → client traffic: reads).
    pub nic_tx: ResourceId,
    /// Inbound NIC direction (client → server traffic: writes).
    pub nic_rx: ResourceId,
    /// Per-device NVMe write bandwidth (burst).
    pub nvme_w: Vec<ResourceId>,
    /// Per-device NVMe read bandwidth (burst).
    pub nvme_r: Vec<ResourceId>,
    /// Node-aggregate NVMe write bandwidth (sustained; §III-A dd value).
    pub nvme_w_pool: ResourceId,
    /// Node-aggregate NVMe read bandwidth (sustained).
    pub nvme_r_pool: ResourceId,
}

/// Hardware resources of one benchmark-client node.
#[derive(Debug, Clone)]
pub struct ClientNode {
    /// Outbound NIC direction (client → server: writes).
    pub nic_tx: ResourceId,
    /// Inbound NIC direction (server → client: reads).
    pub nic_rx: ResourceId,
}

/// The built hardware topology.  Storage crates hold this (by shared
/// reference or clone — it is plain ids) and route transfers through it.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Storage-server nodes.
    pub servers: Vec<ServerNode>,
    /// Benchmark-client nodes.
    pub clients: Vec<ClientNode>,
    /// The calibration the topology was built with.
    pub cal: Calibration,
}

impl Topology {
    /// Create all hardware resources for `spec` in `sched`.
    pub fn build(spec: &ClusterSpec, sched: &mut Scheduler) -> Topology {
        let cal = &spec.cal;
        let ndev = spec.server.nvme_devices;
        let dev_w = cal.server_nvme_write_bw / ndev as f64 * cal.nvme_dev_burst;
        let dev_r = cal.server_nvme_read_bw / ndev as f64 * cal.nvme_dev_burst;
        let servers = (0..spec.servers)
            .map(|s| {
                // heterogeneous fleets scale a server's NVMe (devices and
                // node pool) without touching its NIC
                let speed = spec.server_speed(s);
                ServerNode {
                    nic_tx: sched.add_resource(format!("srv{s}.nic_tx"), cal.nic_bw),
                    nic_rx: sched.add_resource(format!("srv{s}.nic_rx"), cal.nic_bw),
                    nvme_w: (0..ndev)
                        .map(|d| sched.add_resource(format!("srv{s}.nvme{d}.w"), dev_w * speed))
                        .collect(),
                    nvme_r: (0..ndev)
                        .map(|d| sched.add_resource(format!("srv{s}.nvme{d}.r"), dev_r * speed))
                        .collect(),
                    nvme_w_pool: sched.add_resource(
                        format!("srv{s}.nvme.wpool"),
                        cal.server_nvme_write_bw * speed,
                    ),
                    nvme_r_pool: sched.add_resource(
                        format!("srv{s}.nvme.rpool"),
                        cal.server_nvme_read_bw * speed,
                    ),
                }
            })
            .collect();
        let clients = (0..spec.clients)
            .map(|c| ClientNode {
                nic_tx: sched.add_resource(format!("cli{c}.nic_tx"), cal.nic_bw),
                nic_rx: sched.add_resource(format!("cli{c}.nic_rx"), cal.nic_bw),
            })
            .collect();
        Topology {
            servers,
            clients,
            cal: cal.clone(),
        }
    }

    /// Network path for client `c` sending to server `s` (a write's data
    /// movement, before it reaches a device).
    pub fn net_to_server(&self, c: usize, s: usize) -> [ResourceId; 2] {
        [self.clients[c].nic_tx, self.servers[s].nic_rx]
    }

    /// Network path for server `s` sending to client `c` (a read's data
    /// movement).
    pub fn net_to_client(&self, s: usize, c: usize) -> [ResourceId; 2] {
        [self.servers[s].nic_tx, self.clients[c].nic_rx]
    }

    /// Number of storage-server nodes.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of benchmark-client nodes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;
    use simkit::{run, OpId, SimTime, Step, World};

    struct Done(SimTime);
    impl World for Done {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    #[test]
    fn resources_have_paper_capacities() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let s = &topo.servers[0];
        assert_eq!(s.nvme_w.len(), 16);
        // the node pools carry the measured aggregates; individual
        // devices get burst headroom above their sustained share
        assert!((sched.capacity(s.nvme_w_pool) - 3.86 * GIB).abs() < 1.0);
        assert!((sched.capacity(s.nvme_r_pool) - 7.0 * GIB).abs() < 1.0);
        let burst = topo.cal.nvme_dev_burst;
        assert!((sched.capacity(s.nvme_w[0]) - 3.86 * GIB / 16.0 * burst).abs() < 1.0);
        assert!((sched.capacity(s.nvme_r[0]) - 7.0 * GIB / 16.0 * burst).abs() < 1.0);
        assert!((sched.capacity(s.nic_tx) - 6.25 * GIB).abs() < 1.0);
    }

    #[test]
    fn single_network_flow_is_nic_bound() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let path = topo.net_to_server(0, 0);
        sched.submit(Step::transfer(6.25 * GIB, path), OpId(0));
        let mut w = Done(SimTime::ZERO);
        run(&mut sched, &mut w);
        assert!((w.0.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn server_speeds_scale_nvme_but_not_nic() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(3, 1)
            .with_server_speeds(vec![1.0, 0.5])
            .build(&mut sched);
        let full = sched.capacity(topo.servers[0].nvme_w_pool);
        let half = sched.capacity(topo.servers[1].nvme_w_pool);
        assert!((half - full / 2.0).abs() < 1.0);
        // a server past the end of the speeds vector runs at full speed
        assert!((sched.capacity(topo.servers[2].nvme_w_pool) - full).abs() < 1.0);
        // per-device capacities scale with their node
        let dev_full = sched.capacity(topo.servers[0].nvme_w[0]);
        let dev_half = sched.capacity(topo.servers[1].nvme_w[0]);
        assert!((dev_half - dev_full / 2.0).abs() < 1.0);
        // NICs are unaffected: the mix is about device generations
        assert_eq!(
            sched.capacity(topo.servers[0].nic_tx),
            sched.capacity(topo.servers[1].nic_tx)
        );
    }

    #[test]
    fn distinct_nodes_distinct_resources() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 2).build(&mut sched);
        assert_ne!(topo.servers[0].nic_rx, topo.servers[1].nic_rx);
        assert_ne!(topo.clients[0].nic_tx, topo.clients[1].nic_tx);
        assert_ne!(topo.servers[0].nvme_w[0], topo.servers[0].nvme_r[0]);
    }
}
