//! Stage-4 **dimension pass**: byte/time/rate taint analysis over the
//! stage-2 item index.
//!
//! The simulator's hot arithmetic mixes three physical dimensions —
//! byte counts, transfer rates and integer-nanosecond time — and the
//! conversions between them are exactly the expressions a unit test is
//! least likely to pin down: a missing `* 1e9` shrinks every transfer
//! time by nine orders of magnitude and the run still completes, still
//! produces a digest, still draws a plausible figure.  This pass seeds
//! dimensions from `simlint::dim(...)` markers and from built-in
//! knowledge of the `simkit` unit types (`Bytes`, `Rate`, `SimTime`),
//! propagates them through `let` bindings, field accesses, arithmetic
//! and cross-crate calls, and reports:
//!
//! * **`dim-mixed-add`** — `+`/`-`/`+=`/`-=` whose operands carry
//!   different known dimensions (`bytes + ns` is never meaningful).
//! * **`dim-divide-no-convert`** — a seconds-valued expression (most
//!   often `bytes / rate` with the `* 1e9` forgotten) passed to a sink
//!   that expects nanoseconds.
//! * **`dim-unchecked-sink`** — any other argument whose inferred
//!   dimension disagrees with the sink's registered one, including
//!   derived products (`bytes * bytes_per_sec`) that correspond to no
//!   physical quantity.
//! * **`dim-raw-literal`** — a bare conversion constant (`1e9`,
//!   `1_000_000_000`, `1073741824`, `1024.0 * 1024.0`) outside the
//!   units modules, where drift between copies is invisible.
//!
//! # Markers
//!
//! ```text
//! // simlint::dim(bytes)            — on a struct: the type carries bytes
//! pub struct Chunk(pub f64);
//!
//! pub struct Xfer {
//!     // simlint::dim(ns)           — on a field: overrides/when untyped
//!     pub elapsed: u64,
//! }
//!
//! // simlint::dim(s: secs, return: ns)   — on a fn: params by name
//! pub fn secs_to_ns(s: f64) -> u64 { … }
//! ```
//!
//! Fields whose declared type head is itself a registered unit type
//! (`remaining: Bytes`) register without a marker.  Units are `bytes`,
//! `bytes_per_sec`, `ns` and `secs` ([`crate::flow::UNITS`]).
//!
//! # Approximations (deliberate)
//!
//! The evaluator is linear and name-based, like the rest of simlint.
//! Unknown values are treated as dimensionless: multiplying a unit by
//! an unknown keeps the unit (so `rate * 0.5` stays a rate), and only
//! events where *both* sides carry known dimensions are reported — the
//! pass prefers silence to guessing.  Field dimensions are collapsed to
//! bare field names (ambiguous names are dropped); the left operand of
//! a binary `+`/`-` is the nearest postfix chain, not the full
//! precedence-correct subexpression; `as` casts preserve dimension
//! (they change representation, not meaning).  Findings are suppressed
//! with the same `simlint::allow(rule) — reason` directives as every
//! other stage.

use std::collections::BTreeMap;
use std::path::Path;

use crate::flow::{
    build_index, read_sources, skip_angle_brackets, skip_balanced, DimSig, Emitter, FlowRule,
    FnFact, Index, CALL_KEYWORDS,
};
use crate::lex::{Tok, TokKind};
use crate::{Finding, Severity};

/// The stage-4 rule registry.
pub fn dim_rules() -> &'static [FlowRule] {
    &[
        FlowRule {
            id: "dim-mixed-add",
            severity: Severity::Error,
            summary: "adding or subtracting values of different physical dimensions (bytes + ns) is never meaningful",
        },
        FlowRule {
            id: "dim-divide-no-convert",
            severity: Severity::Error,
            summary: "a seconds-valued expression (bytes / rate without * 1e9) reaches a sink that expects nanoseconds",
        },
        FlowRule {
            id: "dim-unchecked-sink",
            severity: Severity::Warn,
            summary: "a sink argument's inferred dimension disagrees with the sink's registered dimension",
        },
        FlowRule {
            id: "dim-raw-literal",
            severity: Severity::Warn,
            summary: "raw conversion constants (1e9, 1_000_000_000, 1024.0 * 1024.0) belong in the units modules",
        },
    ]
}

// ---------------------------------------------------------------------------
// Built-in registrations
// ---------------------------------------------------------------------------

/// Unit types the pass knows without markers: the `simkit` newtypes and
/// the nanosecond clock.
pub(crate) fn builtin_types() -> BTreeMap<String, String> {
    [
        ("Bytes", "bytes"),
        ("Rate", "bytes_per_sec"),
        ("SimTime", "ns"),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect()
}

/// Dimension signatures the pass knows without markers: the `simkit`
/// conversion surface between the three dimensions.
pub(crate) fn builtin_sigs() -> BTreeMap<String, DimSig> {
    let sig = |params: &[(u32, &str)], ret: Option<&str>| DimSig {
        params: params.iter().map(|(p, u)| (*p, u.to_string())).collect(),
        ret: ret.map(|r| r.to_string()),
    };
    [
        ("SimTime::from_secs_f64", sig(&[(0, "secs")], Some("ns"))),
        ("SimTime::from_nanos", sig(&[(0, "ns")], Some("ns"))),
        ("SimTime::as_nanos", sig(&[], Some("ns"))),
        ("SimTime::nanos_since", sig(&[], Some("ns"))),
        ("SimTime::as_secs_f64", sig(&[], Some("secs"))),
        ("SimTime::secs_since", sig(&[], Some("secs"))),
        ("Rate::bytes_in", sig(&[(0, "secs")], Some("bytes"))),
        ("Bytes::get", sig(&[], Some("bytes"))),
        ("Rate::get", sig(&[], Some("bytes_per_sec"))),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// Methods that return (a projection of) their receiver unchanged, so
/// the receiver's dimension survives the call: `per_window.get()` is
/// still bytes, `a.min(b)` is whatever `a` was.
const PRESERVE_METHODS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "abs",
    "ceil",
    "floor",
    "round",
    "copied",
    "cloned",
    "unwrap",
    "unwrap_or",
    "expect",
    "get",
];

// ---------------------------------------------------------------------------
// Lookup tables
// ---------------------------------------------------------------------------

/// Dimension lookup tables, pre-collapsed for the evaluator.  Built once
/// per [`build_index`] run from the registration maps.
pub(crate) struct DimTables {
    /// Type name → unit.
    types: BTreeMap<String, String>,
    /// Bare field name → unit; only names that resolve to one unit
    /// across every registered `Type::field` (the evaluator sees
    /// `x.len`, not `Xfer::len`, so ambiguous names are dropped).
    fields: BTreeMap<String, String>,
    /// `Type::fn` (or bare fn) → signature.
    sigs: BTreeMap<String, DimSig>,
    /// Bare fn name → signature; only names whose registered signatures
    /// are unique (or identical), for method-call and bare resolution.
    by_name: BTreeMap<String, DimSig>,
}

impl DimTables {
    pub(crate) fn new(
        types: &BTreeMap<String, String>,
        fields: &BTreeMap<String, String>,
        sigs: &BTreeMap<String, DimSig>,
    ) -> DimTables {
        let mut bare_fields: BTreeMap<String, Option<String>> = BTreeMap::new();
        for (qual, unit) in fields {
            let bare = qual.rsplit("::").next().unwrap_or(qual).to_string();
            match bare_fields.get(&bare) {
                None => {
                    bare_fields.insert(bare, Some(unit.clone()));
                }
                Some(Some(u)) if u != unit => {
                    bare_fields.insert(bare, None); // ambiguous: drop
                }
                _ => {}
            }
        }
        let mut by_name: BTreeMap<String, Option<DimSig>> = BTreeMap::new();
        for (qual, sig) in sigs {
            let bare = qual.rsplit("::").next().unwrap_or(qual).to_string();
            match by_name.get(&bare) {
                None => {
                    by_name.insert(bare, Some(sig.clone()));
                }
                Some(Some(s)) if s != sig => {
                    by_name.insert(bare, None); // ambiguous: drop
                }
                _ => {}
            }
        }
        DimTables {
            types: types.clone(),
            fields: bare_fields
                .into_iter()
                .filter_map(|(k, v)| v.map(|u| (k, u)))
                .collect(),
            sigs: sigs.clone(),
            by_name: by_name
                .into_iter()
                .filter_map(|(k, v)| v.map(|s| (k, s)))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The abstract value and its arithmetic
// ---------------------------------------------------------------------------

/// Abstract dimension value of an expression.
#[derive(Debug, Clone, PartialEq)]
enum Dv {
    /// A known unit from [`crate::flow::UNITS`].
    Unit(String),
    /// The literal `1e9`/`1_000_000_000`/`NS_PER_SEC` conversion
    /// constant: dimensionless, but `secs * NsConst = ns` and
    /// `ns / NsConst = secs`.
    NsConst,
    /// A product/quotient of units with no registered meaning,
    /// rendered for the report (e.g. `bytes*bytes_per_sec`).
    Derived(String),
    /// No dimension information; treated as dimensionless.
    Unknown,
}

fn combine_add(l: Dv, r: Dv) -> Dv {
    match (l, r) {
        // Unlike units: the operator scan reports the event; keep the
        // left dimension so propagation continues deterministically.
        (Dv::Unit(a), _) => Dv::Unit(a),
        (_, Dv::Unit(b)) => Dv::Unit(b),
        (Dv::Derived(d), _) | (_, Dv::Derived(d)) => Dv::Derived(d),
        _ => Dv::Unknown,
    }
}

fn combine_mul(l: Dv, r: Dv) -> Dv {
    match (l, r) {
        (Dv::Derived(d), _) | (_, Dv::Derived(d)) => Dv::Derived(d),
        (Dv::Unit(s), Dv::NsConst) | (Dv::NsConst, Dv::Unit(s)) if s == "secs" => {
            Dv::Unit("ns".to_string())
        }
        // A known unit times an unknown/constant is dimensionless
        // scaling (`rate * 0.5`): the unit survives.
        (Dv::Unit(a), Dv::NsConst | Dv::Unknown) | (Dv::NsConst | Dv::Unknown, Dv::Unit(a)) => {
            Dv::Unit(a)
        }
        (Dv::Unit(a), Dv::Unit(b)) if (a == "secs") ^ (b == "secs") => {
            let other = if a == "secs" { b } else { a };
            if other == "bytes_per_sec" {
                Dv::Unit("bytes".to_string())
            } else {
                Dv::Derived(format!("{}*{}", "secs", other))
            }
        }
        (Dv::Unit(a), Dv::Unit(b)) => Dv::Derived(format!("{a}*{b}")),
        _ => Dv::Unknown,
    }
}

fn combine_div(l: Dv, r: Dv) -> Dv {
    match (l, r) {
        (Dv::Derived(d), _) | (_, Dv::Derived(d)) => Dv::Derived(d),
        (Dv::Unit(a), Dv::NsConst) if a == "ns" => Dv::Unit("secs".to_string()),
        (Dv::Unit(a), Dv::Unit(b)) if a == "bytes" && b == "bytes_per_sec" => {
            Dv::Unit("secs".to_string())
        }
        (Dv::Unit(a), Dv::Unit(b)) if a == "bytes" && b == "secs" => {
            Dv::Unit("bytes_per_sec".to_string())
        }
        (Dv::Unit(a), Dv::Unit(b)) if a == b => Dv::Unknown, // ratio
        (Dv::Unit(a), Dv::Unit(b)) => Dv::Derived(format!("{a}/{b}")),
        (Dv::Unit(a), Dv::NsConst | Dv::Unknown) => Dv::Unit(a), // per-n split
        _ => Dv::Unknown,
    }
}

// ---------------------------------------------------------------------------
// The expression evaluator
// ---------------------------------------------------------------------------

/// Shared context for one evaluation: the token stream, the body range,
/// the lookup tables, the local environment and the impl self type.
struct Cx<'a> {
    toks: &'a [Tok],
    body: &'a std::ops::Range<usize>,
    tables: &'a DimTables,
    env: &'a BTreeMap<String, Dv>,
    impl_type: Option<&'a str>,
}

impl Cx<'_> {
    fn get(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i).filter(|_| self.body.contains(&i))
    }
}

/// `term (+|- term)*` — returns the value and the index past it.
fn eval_expr(cx: &Cx, i: usize, end: usize) -> (Dv, usize) {
    let (mut v, mut p) = eval_term(cx, i, end);
    while p < end {
        let Some(t) = cx.get(p) else { break };
        let compound = cx.get(p + 1).is_some_and(|n| n.is_punct("="));
        if (t.is_punct("+") || t.is_punct("-")) && !compound {
            let (r, q) = eval_term(cx, p + 1, end);
            if q == p + 1 {
                break; // no operand: not an infix position
            }
            v = combine_add(v, r);
            p = q;
        } else {
            break;
        }
    }
    (v, p)
}

/// `atom ((*|/|%) atom)*`.
fn eval_term(cx: &Cx, i: usize, end: usize) -> (Dv, usize) {
    let (mut v, mut p) = eval_atom(cx, i, end);
    while p < end {
        let Some(t) = cx.get(p) else { break };
        let compound = cx.get(p + 1).is_some_and(|n| n.is_punct("="));
        if compound {
            break;
        }
        if t.is_punct("*") || t.is_punct("/") || t.is_punct("%") {
            let (r, q) = eval_atom(cx, p + 1, end);
            if q == p + 1 {
                break;
            }
            v = match t.text.as_str() {
                "*" => combine_mul(v, r),
                "/" => combine_div(v, r),
                _ => Dv::Unknown,
            };
            p = q;
        } else {
            break;
        }
    }
    (v, p)
}

/// One operand: prefixes, a literal / parenthesized expression / path /
/// call, then the postfix chain (`?`, `as`, `.field`, `.method(…)`,
/// `[…]`).
fn eval_atom(cx: &Cx, mut i: usize, end: usize) -> (Dv, usize) {
    while i < end
        && cx.get(i).is_some_and(|t| {
            t.is_punct("&")
                || t.is_punct("*")
                || t.is_punct("-")
                || t.is_punct("!")
                || t.is_ident("mut")
        })
    {
        i += 1;
    }
    let Some(t) = cx.get(i).filter(|_| i < end) else {
        return (Dv::Unknown, i);
    };
    let mut v;
    if t.kind == TokKind::Num {
        let stripped = t.text.replace('_', "");
        v = if stripped == "1e9" || stripped == "1000000000" {
            Dv::NsConst
        } else {
            Dv::Unknown
        };
        i += 1;
        // Float continuation: `1024` `.` `0` lexes as three tokens.
        if cx.get(i).is_some_and(|t| t.is_punct("."))
            && cx.get(i + 1).is_some_and(|t| t.kind == TokKind::Num)
        {
            i += 2;
        }
    } else if t.is_punct("(") {
        let close = skip_balanced(cx.toks, i) - 1;
        let (inner, _) = eval_expr(cx, i + 1, close.min(end));
        v = inner;
        i = (close + 1).min(end);
    } else if t.kind == TokKind::Ident {
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            return (Dv::Unknown, i + 1);
        }
        // Collect the `a::b::c` path.
        let mut segs: Vec<&str> = vec![t.text.as_str()];
        let mut p = i + 1;
        while cx.get(p).is_some_and(|t| t.is_punct("::"))
            && cx.get(p + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            segs.push(cx.toks[p + 1].text.as_str());
            p += 2;
        }
        let name = *segs.last().unwrap();
        if cx.get(p).is_some_and(|t| t.is_punct("(")) {
            // Call (or tuple-struct construction).
            let close = skip_balanced(cx.toks, p);
            v = if segs.len() >= 2 {
                let q = segs[segs.len() - 2];
                let q = if q == "Self" {
                    cx.impl_type.unwrap_or("")
                } else {
                    q
                };
                cx.tables
                    .sigs
                    .get(&format!("{q}::{name}"))
                    .and_then(|s| s.ret.clone())
                    .map(Dv::Unit)
                    .unwrap_or(Dv::Unknown)
            } else if let Some(u) = cx.tables.types.get(name) {
                Dv::Unit(u.clone()) // `Bytes(raw)` wraps into the unit
            } else {
                cx.tables
                    .sigs
                    .get(name)
                    .or_else(|| cx.tables.by_name.get(name))
                    .and_then(|s| s.ret.clone())
                    .map(Dv::Unit)
                    .unwrap_or(Dv::Unknown)
            };
            i = close.min(end);
        } else if segs.len() >= 2 {
            // Path constant / variant: `Bytes::ZERO` carries bytes.
            v = cx
                .tables
                .types
                .get(segs[segs.len() - 2])
                .map(|u| Dv::Unit(u.clone()))
                .unwrap_or(Dv::Unknown);
            i = p;
        } else if name == "NS_PER_SEC" {
            v = Dv::NsConst;
            i = p;
        } else if name == "self" {
            v = cx
                .impl_type
                .and_then(|t| cx.tables.types.get(t))
                .map(|u| Dv::Unit(u.clone()))
                .unwrap_or(Dv::Unknown);
            i = p;
        } else {
            v = cx.env.get(name).cloned().unwrap_or(Dv::Unknown);
            i = p;
        }
    } else {
        return (Dv::Unknown, i);
    }
    // Postfix chain.
    while i < end {
        let Some(t) = cx.get(i) else { break };
        if t.is_punct("?") {
            i += 1;
        } else if t.is_ident("as") {
            // Casts change representation, not dimension.
            i += 1;
            while cx
                .get(i)
                .is_some_and(|t| t.kind == TokKind::Ident || t.is_punct("::"))
            {
                i += 1;
            }
        } else if t.is_punct(".") {
            let Some(n) = cx.get(i + 1) else { break };
            if n.kind == TokKind::Num {
                i += 2; // tuple index: dimension of the whole is kept
            } else if n.kind == TokKind::Ident {
                if cx.get(i + 2).is_some_and(|t| t.is_punct("(")) {
                    let close = skip_balanced(cx.toks, i + 2);
                    if let Some(ret) = cx
                        .tables
                        .by_name
                        .get(n.text.as_str())
                        .and_then(|s| s.ret.clone())
                    {
                        v = Dv::Unit(ret);
                    } else if !PRESERVE_METHODS.contains(&n.text.as_str()) {
                        v = Dv::Unknown;
                    }
                    i = close.min(end);
                } else {
                    v = cx
                        .tables
                        .fields
                        .get(n.text.as_str())
                        .map(|u| Dv::Unit(u.clone()))
                        .unwrap_or(Dv::Unknown);
                    i += 2;
                }
            } else {
                break; // `..` range
            }
        } else if t.is_punct("[") {
            i = skip_balanced(cx.toks, i).min(end);
            v = Dv::Unknown; // element type unknowable by name
        } else {
            break;
        }
    }
    (v, i)
}

// ---------------------------------------------------------------------------
// Fact extraction (runs inside build_index, cached in the JSON index)
// ---------------------------------------------------------------------------

/// Split a call's arguments into token ranges.  `open` is the `(`.
fn split_args(toks: &[Tok], body: &std::ops::Range<usize>, open: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    let mut i = open;
    while body.contains(&i) && i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                if i > start {
                    out.push((start, i));
                }
                break;
            }
        } else if t.is_punct(",") && depth == 1 {
            out.push((start, i));
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// Record the facts the dimension analysis reads: mixed additions, sink
/// violations and raw conversion literals.  Runs over the same token
/// range as the other fact extractors so the facts land in the cached
/// index.  All evaluation is pure; each event is recorded by exactly
/// one detector visiting its anchor token once.
pub(crate) fn collect_dim_facts(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    tables: &DimTables,
    params: &[String],
    qual: &str,
    impl_type: Option<&str>,
    fact: &mut FnFact,
) {
    let mut env: BTreeMap<String, Dv> = BTreeMap::new();
    if let Some(sig) = tables.sigs.get(qual) {
        for (pos, unit) in &sig.params {
            if let Some(name) = params.get(*pos as usize).filter(|n| !n.is_empty()) {
                env.insert(name.clone(), Dv::Unit(unit.clone()));
            }
        }
    }
    let get = |i: usize| toks.get(i).filter(|_| body.contains(&i));

    for i in body.clone() {
        let t = &toks[i];
        let prev = i.checked_sub(1).and_then(get);
        let prev2 = i.checked_sub(2).and_then(get);
        let next = get(i + 1);
        let cx = Cx {
            toks,
            body: &body,
            tables,
            env: &env,
            impl_type,
        };

        // ---- let bindings: extend the environment ------------------------
        if t.is_ident("let") {
            let mut j = i + 1;
            while get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let plain = get(j).is_some_and(|t| {
                t.kind == TokKind::Ident && !CALL_KEYWORDS.contains(&t.text.as_str())
            }) && get(j + 1).is_some_and(|t| t.is_punct(":") || t.is_punct("="));
            if plain {
                let name = toks[j].text.clone();
                // Find the `=` that starts the initializer (skipping a
                // type annotation, whose generics can nest).
                let mut k = j + 1;
                let mut eq = None;
                while let Some(tk) = get(k) {
                    if tk.is_punct(";") {
                        break;
                    }
                    if tk.is_punct("=") && !get(k + 1).is_some_and(|t| t.is_punct("=")) {
                        eq = Some(k);
                        break;
                    }
                    if tk.is_punct("<") {
                        k = skip_angle_brackets(toks, k);
                    } else if tk.is_punct("(") || tk.is_punct("[") {
                        k = skip_balanced(toks, k);
                    } else {
                        k += 1;
                    }
                }
                if let Some(eq) = eq {
                    let (dv, _) = eval_expr(&cx, eq + 1, body.end);
                    env.insert(name, dv);
                }
            }
            continue; // the linear scan still visits the RHS tokens
        }

        // ---- raw conversion literals -------------------------------------
        if t.kind == TokKind::Num {
            let stripped = t.text.replace('_', "");
            if stripped == "1e9" || stripped == "1000000000" || stripped == "1073741824" {
                fact.dim_lits.push((t.line, t.text.clone()));
            }
            // `1024.0 * 1024.0` (seven tokens); record at the first
            // window only, so `1024.0 * 1024.0 * 1024.0` is one event.
            let window = |at: usize| -> bool {
                get(at).is_some_and(|t| t.kind == TokKind::Num && t.text == "1024")
                    && get(at + 1).is_some_and(|t| t.is_punct("."))
                    && get(at + 2).is_some_and(|t| t.kind == TokKind::Num && t.text == "0")
                    && get(at + 3).is_some_and(|t| t.is_punct("*"))
                    && get(at + 4).is_some_and(|t| t.kind == TokKind::Num && t.text == "1024")
                    && get(at + 5).is_some_and(|t| t.is_punct("."))
                    && get(at + 6).is_some_and(|t| t.kind == TokKind::Num && t.text == "0")
            };
            if window(i) && !(i >= 4 && window(i - 4)) {
                fact.dim_lits.push((t.line, "1024.0 * 1024.0".to_string()));
            }
        }

        // ---- sink checks at call sites -----------------------------------
        if t.kind == TokKind::Ident
            && next.is_some_and(|n| n.is_punct("("))
            && !CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let (display, sig) = if prev.is_some_and(|p| p.is_punct("::"))
                && prev2.is_some_and(|q| q.kind == TokKind::Ident)
            {
                let q = prev2.map(|q| q.text.as_str()).unwrap_or("");
                let q = if q == "Self" {
                    impl_type.unwrap_or("")
                } else {
                    q
                };
                let key = format!("{q}::{}", t.text);
                (key.clone(), tables.sigs.get(&key))
            } else if prev.is_some_and(|p| p.is_punct(".")) {
                (format!(".{}", t.text), tables.by_name.get(t.text.as_str()))
            } else if tables.types.contains_key(&t.text) {
                // Tuple-struct construction wraps the raw representation;
                // the argument is dimensionless by design.
                (t.text.clone(), None)
            } else {
                (
                    t.text.clone(),
                    tables
                        .sigs
                        .get(&t.text)
                        .or_else(|| tables.by_name.get(t.text.as_str())),
                )
            };
            if let Some(sig) = sig.filter(|s| !s.params.is_empty()) {
                let args = split_args(toks, &body, i + 1);
                for (pos, unit) in &sig.params {
                    let Some(&(s, e)) = args.get(*pos as usize) else {
                        continue;
                    };
                    let (dv, _) = eval_expr(&cx, s, e);
                    match dv {
                        Dv::Unit(u) if &u == unit => {}
                        Dv::Unit(u) => {
                            fact.dim_sinks
                                .push((t.line, display.clone(), unit.clone(), u));
                        }
                        Dv::Derived(d) => {
                            fact.dim_sinks
                                .push((t.line, display.clone(), unit.clone(), d));
                        }
                        Dv::NsConst | Dv::Unknown => {}
                    }
                }
            }
        }

        // ---- mixed addition / subtraction --------------------------------
        if t.is_punct("+") || t.is_punct("-") {
            let compound = next.is_some_and(|n| n.is_punct("="));
            let binary = prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !CALL_KEYWORDS.contains(&p.text.as_str()))
                    || p.kind == TokKind::Num
                    || p.is_punct(")")
                    || p.is_punct("]")
            });
            if compound || binary {
                let left = left_operand(&cx, i).map(|s| eval_atom(&cx, s, i).0);
                let rhs_at = if compound { i + 2 } else { i + 1 };
                let right = if compound {
                    eval_expr(&cx, rhs_at, body.end).0
                } else {
                    eval_term(&cx, rhs_at, body.end).0
                };
                if let (Some(Dv::Unit(a)), Dv::Unit(b)) = (left, right) {
                    if a != b {
                        fact.dim_mixed.push((t.line, a, b));
                    }
                }
            }
        }
    }
}

/// Find the start of the postfix chain ending just before the operator
/// at `op`: walks back over `ident`/`num`/`.`/`::` segments and balanced
/// `(…)`/`[…]` groups.  Computed receivers it cannot name yield `None`.
fn left_operand(cx: &Cx, op: usize) -> Option<usize> {
    let mut j = op; // exclusive end; operand is toks[start..op]
    loop {
        let t = cx.get(j.checked_sub(1)?)?;
        if t.is_punct(")") || t.is_punct("]") {
            // Walk back to the matching opener.
            let (open_p, close_p) = if t.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let mut depth = 0isize;
            let mut k = j - 1;
            loop {
                let u = cx.get(k)?;
                if u.is_punct(close_p) {
                    depth += 1;
                } else if u.is_punct(open_p) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            j = k;
            // A call's callee (or indexed base) precedes the opener.
            let before = j.checked_sub(1).and_then(|b| cx.get(b));
            match before {
                Some(b) if b.kind == TokKind::Ident || b.kind == TokKind::Num => j -= 1,
                _ => return Some(j), // parenthesized subexpression
            }
        } else if t.kind == TokKind::Ident || t.kind == TokKind::Num {
            j -= 1;
        } else {
            return Some(j);
        }
        // Continue left through `.`/`::` chains.
        match j.checked_sub(1).and_then(|b| cx.get(b)) {
            Some(b) if b.is_punct(".") || b.is_punct("::") => {
                j -= 1;
            }
            _ => return Some(j),
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis over cached facts
// ---------------------------------------------------------------------------

/// Paths whose raw conversion constants are the point: the units
/// modules define the constants everyone else must reference.
fn is_units_module(path: &str) -> bool {
    path.ends_with("units.rs") || path.ends_with("time.rs")
}

/// Run the dimension analysis over a built index.  Mirrors
/// [`crate::flow::analyze`]: `sources` supplies excerpts and
/// `simlint::allow` suppressions.
pub fn analyze(index: &Index, sources: &BTreeMap<String, String>) -> Vec<Finding> {
    let mut em = Emitter::new(sources);
    for f in &index.fns {
        for (line, a, b) in &f.dim_mixed {
            em.emit(
                "dim-mixed-add",
                Severity::Error,
                &f.file,
                *line,
                Some(f.line),
                format!(
                    "`{}` adds/subtracts {a} and {b}: values of different physical dimensions can never be combined additively",
                    f.qual,
                ),
            );
        }
        for (line, callee, expected, got) in &f.dim_sinks {
            if got == "secs" && expected == "ns" {
                em.emit(
                    "dim-divide-no-convert",
                    Severity::Error,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "`{}` passes a seconds-valued expression to `{callee}`, which expects nanoseconds: multiply by NS_PER_SEC (or use units::secs_to_ns / `Bytes / Rate`) first",
                        f.qual,
                    ),
                );
            } else {
                em.emit(
                    "dim-unchecked-sink",
                    Severity::Warn,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "`{}` passes {got} to `{callee}`, which expects {expected}",
                        f.qual,
                    ),
                );
            }
        }
        if !is_units_module(&f.file) {
            for (line, lit) in &f.dim_lits {
                em.emit(
                    "dim-raw-literal",
                    Severity::Warn,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "raw conversion constant `{lit}` in `{}`: use the named constants/helpers in simkit::units so copies cannot drift",
                        f.qual,
                    ),
                );
            }
        }
    }
    let mut findings = em.findings;
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Convenience: read sources, build the index and analyze in one call.
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = read_sources(root)?;
    let index = build_index(&sources);
    Ok(analyze(&index, &sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(files: &[(&str, &str)]) -> BTreeMap<String, String> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources = srcs(files);
        let index = build_index(&sources);
        analyze(&index, &sources)
    }

    fn rules_hit(files: &[(&str, &str)]) -> Vec<&'static str> {
        run(files).into_iter().map(|f| f.rule).collect()
    }

    /// A miniature transfer record with marked fields, used by most tests.
    const XFER: &str = "pub struct Xfer {\n\
         // simlint::dim(bytes)\n\
         pub len: f64,\n\
         // simlint::dim(ns)\n\
         pub elapsed: u64,\n\
         // simlint::dim(bytes_per_sec)\n\
         pub bw: f64,\n\
     }\n";

    #[test]
    fn mixed_add_flagged_and_same_unit_clean() {
        let bad = format!(
            "{XFER}impl Xfer {{\n\
                 pub fn broken(&self) -> f64 {{ self.len + self.elapsed as f64 }}\n\
                 pub fn fine(&self, o: &Xfer) -> f64 {{ self.len + o.len }}\n\
             }}\n"
        );
        let findings = run(&[("crates/x/src/lib.rs", &bad)]);
        let mixed: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dim-mixed-add")
            .collect();
        assert_eq!(mixed.len(), 1, "{findings:?}");
        assert!(mixed[0].message.contains("bytes"), "{}", mixed[0].message);
        assert!(mixed[0].message.contains("ns"));
        assert!(mixed[0].message.contains("Xfer::broken"));
    }

    #[test]
    fn compound_assign_mixing_flagged() {
        let bad = format!(
            "{XFER}impl Xfer {{\n\
                 pub fn tick(&mut self, dt_ns: u64) {{ self.len += self.elapsed as f64; }}\n\
             }}\n"
        );
        assert!(rules_hit(&[("crates/x/src/lib.rs", &bad)]).contains(&"dim-mixed-add"));
    }

    #[test]
    fn divide_without_convert_reaches_ns_sink() {
        let src = format!(
            "{XFER}// simlint::dim(ns: ns)\n\
             pub fn delay(ns: u64) {{}}\n\
             impl Xfer {{\n\
                 pub fn broken(&self) {{\n\
                     let secs = self.len / self.bw;\n\
                     delay(secs as u64);\n\
                 }}\n\
                 pub fn fixed(&self) {{\n\
                     let secs = self.len / self.bw;\n\
                     delay((secs * 1e9) as u64);\n\
                 }}\n\
             }}\n"
        );
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        let sinks: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dim-divide-no-convert")
            .collect();
        assert_eq!(sinks.len(), 1, "{findings:?}");
        assert!(sinks[0].message.contains("Xfer::broken"));
        // `secs * 1e9` converts: only the raw-literal warn remains there.
        assert!(findings
            .iter()
            .filter(|f| f.message.contains("Xfer::fixed"))
            .all(|f| f.rule == "dim-raw-literal"));
    }

    #[test]
    fn derived_product_reaching_sink_warns() {
        let src = format!(
            "{XFER}// simlint::dim(units: bytes)\n\
             pub fn transfer(units: f64) {{}}\n\
             impl Xfer {{\n\
                 pub fn broken(&self) {{ transfer(self.len * self.bw); }}\n\
                 pub fn fine(&self) {{ transfer(self.len); }}\n\
             }}\n"
        );
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        let sinks: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dim-unchecked-sink")
            .collect();
        assert_eq!(sinks.len(), 1, "{findings:?}");
        assert!(
            sinks[0].message.contains("bytes*bytes_per_sec"),
            "{}",
            sinks[0].message
        );
        assert_eq!(sinks[0].severity, Severity::Warn);
    }

    #[test]
    fn builtin_simtime_sig_checks_arguments() {
        let src = format!(
            "{XFER}impl Xfer {{\n\
                 pub fn broken(&self) -> u64 {{\n\
                     let t = SimTime::from_secs_f64(self.elapsed as f64);\n\
                     t.as_nanos()\n\
                 }}\n\
                 pub fn fine(&self) -> u64 {{\n\
                     let t = SimTime::from_secs_f64(self.len / self.bw);\n\
                     t.as_nanos()\n\
                 }}\n\
             }}\n"
        );
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        let sinks: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dim-unchecked-sink")
            .collect();
        assert_eq!(sinks.len(), 1, "{findings:?}");
        assert!(sinks[0].message.contains("Xfer::broken"));
        assert!(sinks[0].message.contains("ns"));
    }

    #[test]
    fn raw_literals_flagged_outside_units_modules_only() {
        let files = &[
            (
                "crates/x/src/lib.rs",
                "pub fn f(s: f64) -> u64 { (s * 1e9) as u64 }\n\
                 pub fn g() -> f64 { 1024.0 * 1024.0 }\n\
                 pub fn h() -> u64 { 1_000_000_000 }\n",
            ),
            (
                "crates/x/src/units.rs",
                "pub const NS: f64 = 1e9;\n\
                 pub fn conv(s: f64) -> u64 { (s * 1e9) as u64 }\n",
            ),
        ];
        let findings = run(files);
        let lits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dim-raw-literal")
            .collect();
        assert_eq!(lits.len(), 3, "{findings:?}");
        assert!(lits.iter().all(|f| f.path == "crates/x/src/lib.rs"));
        assert!(lits.iter().any(|f| f.message.contains("1024.0 * 1024.0")));
    }

    #[test]
    fn marked_conversion_helper_makes_sink_clean() {
        let src = format!(
            "{XFER}// simlint::dim(ns: ns)\n\
             pub fn delay(ns: u64) {{}}\n\
             // simlint::dim(s: secs, return: ns)\n\
             pub fn secs_to_ns(s: f64) -> u64 {{ 0 }}\n\
             impl Xfer {{\n\
                 pub fn fine(&self) {{\n\
                     let secs = self.len / self.bw;\n\
                     delay(secs_to_ns(secs));\n\
                 }}\n\
             }}\n"
        );
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(
            findings
                .iter()
                .all(|f| f.rule == "dim-raw-literal" || !f.message.contains("fine")),
            "{findings:?}"
        );
    }

    #[test]
    fn own_params_seed_the_environment() {
        let src = "// simlint::dim(ns: ns)\n\
             pub fn delay(ns: u64) {}\n\
             // simlint::dim(secs: secs)\n\
             pub fn broken(secs: f64) { delay(secs as u64); }\n";
        let findings = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(
            rules_hit(&[("crates/x/src/lib.rs", src)]),
            vec!["dim-divide-no-convert"],
            "{findings:?}"
        );
    }

    #[test]
    fn allow_suppresses_with_reason() {
        let src = format!(
            "{XFER}impl Xfer {{\n\
                 // simlint::allow(dim-mixed-add) — packed wire encoding, dimensionless by contract\n\
                 pub fn packed(&self) -> f64 {{ self.len + self.elapsed as f64 }}\n\
             }}\n"
        );
        assert!(!rules_hit(&[("crates/x/src/lib.rs", &src)]).contains(&"dim-mixed-add"));
    }

    #[test]
    fn bytes_over_rate_newtype_division_is_ns() {
        // `Bytes / Rate` yields SimTime (ns) through the builtin tables:
        // wrapping in the newtypes is itself the conversion.
        let src = "// simlint::dim(ns: ns)\n\
             pub fn delay(ns: u64) {}\n\
             pub fn fine(len: f64, bw: f64) {\n\
                 let t = Bytes(len) / Rate(bw);\n\
                 delay(t.as_nanos());\n\
             }\n";
        assert!(rules_hit(&[("crates/x/src/lib.rs", src)]).is_empty());
    }
}
