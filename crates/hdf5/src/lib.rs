//! # hdf5-lite — a miniature hierarchical data format library
//!
//! Models the two HDF5 configurations the paper benchmarks through IOR:
//!
//! * **POSIX VFD** ([`H5PosixFile`]): one file per writer process holding
//!   superblock, object headers, chunk index and data.  Dataset writes
//!   fragment into chunk-sized POSIX writes and interleave small metadata
//!   updates — the access pattern that makes HDF5-on-DFUSE slower than
//!   plain IOR on the same mount.
//! * **DAOS VOL connector** ([`H5DaosFile`]): one **container per file**
//!   (hence per writer process, as the paper highlights), a metadata
//!   Key-Value per file, and a separate DAOS Array object for every
//!   dataset write.  Each dataset create/lookup is a container-metadata
//!   transaction against the pool's fixed-size metadata service — the
//!   mechanism behind the scaling collapse in Fig. 4/5.
//!
//! Both drivers share [`H5Runtime`], which models the HDF5 library's
//! per-client-node processing ceiling.

pub mod model;

pub use model::{H5DaosFile, H5PosixFile, H5Runtime, Hdf5Error};
