//! Property test: the DFS namespace agrees with a trivial reference
//! model under random operation sequences.

use cluster::payload::Payload;
use cluster::posix::{FsError, PosixFs};
use cluster::ClusterSpec;
use daos_core::{ContainerProps, DaosSystem, DataMode};
use daos_dfs::{Dfs, DfsOpts};
use proptest::prelude::*;
use simkit::{run, OpId, Scheduler, Step, World};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Sink);
}

#[derive(Debug, Clone)]
enum NsOp {
    Mkdir(u8),
    Create(u8, u8),
    Unlink(u8, u8),
    Write(u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        (0u8..4).prop_map(NsOp::Mkdir),
        (0u8..4, 0u8..6).prop_map(|(d, f)| NsOp::Create(d, f)),
        (0u8..4, 0u8..6).prop_map(|(d, f)| NsOp::Unlink(d, f)),
        (0u8..4, 0u8..6, any::<u8>()).prop_map(|(d, f, b)| NsOp::Write(d, f, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn namespace_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 1, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (mut dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);

        // reference: dir -> file -> last written byte (None = exists, empty)
        let mut model: BTreeMap<u8, BTreeMap<u8, Option<u8>>> = BTreeMap::new();

        for op in &ops {
            match *op {
                NsOp::Mkdir(d) => {
                    let r = dfs.mkdir(0, &format!("/d{d}"));
                    match r {
                        Ok(step) => {
                            exec(&mut sched, step);
                            prop_assert!(!model.contains_key(&d), "mkdir of existing dir succeeded");
                            model.insert(d, BTreeMap::new());
                        }
                        Err(FsError::Exists) => prop_assert!(model.contains_key(&d)),
                        Err(e) => prop_assert!(false, "unexpected mkdir error {e:?}"),
                    }
                }
                NsOp::Create(d, f) => {
                    let r = dfs.open(0, &format!("/d{d}/f{f}"), true);
                    match r {
                        Ok((h, step)) => {
                            exec(&mut sched, step);
                            exec(&mut sched, dfs.close(0, h).unwrap());
                            prop_assert!(model.contains_key(&d), "create without parent succeeded");
                            model.get_mut(&d).unwrap().entry(f).or_insert(None);
                        }
                        Err(FsError::NotFound) => prop_assert!(!model.contains_key(&d)),
                        Err(e) => prop_assert!(false, "unexpected open error {e:?}"),
                    }
                }
                NsOp::Unlink(d, f) => {
                    let r = dfs.unlink(0, &format!("/d{d}/f{f}"));
                    match r {
                        Ok(step) => {
                            exec(&mut sched, step);
                            let existed =
                                model.get_mut(&d).and_then(|m| m.remove(&f)).is_some();
                            prop_assert!(existed, "unlink of missing entry succeeded");
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(
                                model.get(&d).is_none_or(|m| !m.contains_key(&f)),
                                "unlink failed for existing file"
                            );
                        }
                        Err(e) => prop_assert!(false, "unexpected unlink error {e:?}"),
                    }
                }
                NsOp::Write(d, f, b) => {
                    let r = dfs.open(0, &format!("/d{d}/f{f}"), false);
                    match r {
                        Ok((h, step)) => {
                            exec(&mut sched, step);
                            exec(&mut sched, dfs.write(0, h, 0, Payload::Bytes(vec![b; 16])).unwrap());
                            exec(&mut sched, dfs.close(0, h).unwrap());
                            prop_assert!(
                                model.get(&d).is_some_and(|m| m.contains_key(&f)),
                                "open of missing file succeeded"
                            );
                            model.get_mut(&d).unwrap().insert(f, Some(b));
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(model.get(&d).is_none_or(|m| !m.contains_key(&f)));
                        }
                        Err(e) => prop_assert!(false, "unexpected open error {e:?}"),
                    }
                }
            }
        }

        // final agreement: listings and contents
        for (d, files) in &model {
            let (names, s) = dfs.readdir(0, &format!("/d{d}")).unwrap();
            exec(&mut sched, s);
            let expect: Vec<String> = files.keys().map(|f| format!("f{f}")).collect();
            prop_assert_eq!(&names, &expect, "dir d{} listing", d);
            for (f, byte) in files {
                let (h, s) = dfs.open(0, &format!("/d{d}/f{f}"), false).unwrap();
                exec(&mut sched, s);
                if let Some(b) = byte {
                    let (data, s) = dfs.read(0, h, 0, 16).unwrap();
                    exec(&mut sched, s);
                    prop_assert_eq!(data.bytes().unwrap(), &[*b; 16][..]);
                }
                exec(&mut sched, dfs.close(0, h).unwrap());
            }
        }
    }
}
