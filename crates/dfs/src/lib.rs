//! # daos-dfs — the libdfs-style POSIX namespace on DAOS objects
//!
//! Implements POSIX directories, regular files and symbolic links on top
//! of [`daos_core`]: directories are Key-Value objects holding packed
//! dirents, files are Array objects, symlinks live in their parent's
//! dirent.  This mirrors libdfs, which the paper benchmarks directly
//! (IOR "DFS" backend) and through DFUSE.
//!
//! [`Dfs`] implements [`cluster::posix::PosixFs`], the interface the
//! POSIX-backend benchmarks program against.

pub mod namespace;

pub use namespace::{Dfs, DfsOpts, InodeId};
