//! Print the replay digest of every paper scenario (the `replay_all`
//! harness, one line per scenario).  Run before and after an engine
//! change and diff the output: byte-identical lines prove the change
//! did not alter the event schedule.
//!
//! ```text
//! cargo run --release -p bench --example replay_digests
//! ```

use benchkit::{replay_all, RunSpec};
use cluster::Calibration;

fn main() {
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 12;
    let reports = replay_all(&spec, &Calibration::default());
    for r in &reports {
        assert!(
            r.deterministic(),
            "{} replayed nondeterministically",
            r.scenario.name()
        );
        println!(
            "{:<24} digest {:#018x} bw ({:.6}, {:.6}) MiB/s",
            r.scenario.name(),
            r.digests[0],
            r.bandwidths[0].0,
            r.bandwidths[0].1,
        );
    }
}
