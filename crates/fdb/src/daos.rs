//! FDB's DAOS backend: one S1 Array per field, S1 Key-Value indexes.
//!
//! Matches the paper's description: fields are stored in a separate
//! Array each; indexing information goes to Key-Values, most exclusive
//! to the archiving process (its index object), some shared by all
//! processes (the catalogue).  An average of ~10 KV operations accompany
//! every field (§III-B).  Unlike Field I/O, fdb-hammer's reader knows
//! field sizes from the index and **skips the per-read size check** —
//! the optimisation the paper credits for its better read scaling.

use crate::backend::{Fdb, FdbError};
use crate::key::{FieldKey, KeyQuery};
use cluster::payload::{Payload, ReadPayload};
use daos_core::{
    ContainerId, DaosError, DaosSystem, DataMode, ObjectClass, Oid, RetryExec, RetryPolicy,
    RetryStats,
};
use simkit::Step;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// How often a shared-catalogue KV update accompanies an archive (the
/// catalogue describes databases/indexes, which change rarely).
const CATALOGUE_EVERY: usize = 32;

struct ProcState {
    /// The process's exclusive index KV.
    index_kv: Oid,
    archived: usize,
}

/// FDB over libdaos.
// simlint::sim_state — replay-visible simulation state
pub struct FdbDaos {
    daos: Rc<RefCell<DaosSystem>>,
    cid: ContainerId,
    /// Shared catalogue KVs (all processes update them occasionally).
    catalogue: Vec<Oid>,
    array_class: ObjectClass,
    kv_class: ObjectClass,
    kv_ops_per_field: u32,
    kv_entry_bytes: f64,
    procs: BTreeMap<usize, ProcState>,
    toc: BTreeMap<FieldKey, (Oid, u64)>,
    /// Retry machinery around archive/retrieve (off by default).
    retry: RetryExec,
}

impl FdbDaos {
    /// Create the backend in a fresh container.  The paper found `S1`
    /// optimal for both Arrays and Key-Values in fdb-hammer.
    pub fn new(
        daos: Rc<RefCell<DaosSystem>>,
        node: usize,
        cid: ContainerId,
        array_class: ObjectClass,
        kv_class: ObjectClass,
    ) -> Result<(FdbDaos, Step), FdbError> {
        let (kv_ops_per_field, kv_entry_bytes) = {
            let d = daos.borrow();
            (d.cal().kv_ops_per_field, d.cal().kv_entry_bytes)
        };
        let mut steps = Vec::new();
        let mut catalogue = Vec::new();
        for _ in 0..2 {
            let (kv, s) = daos
                .borrow_mut()
                .kv_create(node, cid, kv_class)
                .map_err(map_daos)?;
            catalogue.push(kv);
            steps.push(s);
        }
        Ok((
            FdbDaos {
                daos,
                cid,
                catalogue,
                array_class,
                kv_class,
                kv_ops_per_field,
                kv_entry_bytes,
                procs: BTreeMap::new(),
                toc: BTreeMap::new(),
                retry: RetryExec::disabled(),
            },
            Step::seq(steps),
        ))
    }

    /// Configure retry/timeout/backoff on archive/retrieve (`seed`
    /// drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    fn proc_state(&mut self, node: usize, proc: usize) -> Result<(Oid, Step), FdbError> {
        if let Some(st) = self.procs.get(&proc) {
            return Ok((st.index_kv, Step::Noop));
        }
        let (kv, s) = self
            .daos
            .borrow_mut()
            .kv_create(node, self.cid, self.kv_class)
            .map_err(map_daos)?;
        self.procs.insert(
            proc,
            ProcState {
                index_kv: kv,
                archived: 0,
            },
        );
        Ok((kv, s))
    }

    fn entry_payload(&self, oid: Oid, len: u64) -> Payload {
        match self.daos.borrow().data_mode() {
            DataMode::Full => {
                let mut v = Vec::with_capacity(self.kv_entry_bytes as usize);
                v.extend_from_slice(&oid.hi.to_le_bytes());
                v.extend_from_slice(&oid.lo.to_le_bytes());
                v.extend_from_slice(&len.to_le_bytes());
                v.resize(self.kv_entry_bytes as usize, 0);
                Payload::Bytes(v)
            }
            DataMode::Sized => Payload::Sized(self.kv_entry_bytes as u64),
        }
    }
}

fn map_daos(e: DaosError) -> FdbError {
    match e {
        DaosError::NoSuchKey | DaosError::NoSuchObject => FdbError::FieldNotFound,
        // the retriable face of a backend fault (see `FdbError`'s
        // `daos_core::retry::Retriable` impl)
        DaosError::Timeout | DaosError::TargetDown | DaosError::Retriable => {
            FdbError::Backend("transient")
        }
        _ => FdbError::Backend("daos"),
    }
}

impl FdbDaos {
    fn archive_inner(
        &mut self,
        node: usize,
        proc: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError> {
        let len = data.len();
        let (index_kv, setup) = self.proc_state(node, proc)?;
        let mut daos = self.daos.borrow_mut();
        let (oid, s1) = daos
            .array_create(node, self.cid, self.array_class, 1 << 20)
            .map_err(map_daos)?;
        let s2 = daos
            .array_write(node, self.cid, oid, 0, data)
            .map_err(map_daos)?;
        drop(daos);
        self.toc.insert(*key, (oid, len));
        // index updates: the key entry plus axis/metadata puts, all on
        // the process's exclusive index KV …
        let entry = self.entry_payload(oid, len);
        let mut kv_steps = Vec::new();
        let keystr = key.to_string();
        {
            let mut daos = self.daos.borrow_mut();
            let s = daos
                .kv_put(node, self.cid, index_kv, keystr.as_bytes(), entry)
                .map_err(map_daos)?;
            kv_steps.push(s);
            for i in 1..self.kv_ops_per_field.saturating_sub(1) {
                let axis_key = format!("axis/{}/{}", i, keystr);
                let p = match daos.data_mode() {
                    DataMode::Full => Payload::Bytes(vec![0; 64]),
                    DataMode::Sized => Payload::Sized(64),
                };
                let s = daos
                    .kv_put(node, self.cid, index_kv, axis_key.as_bytes(), p)
                    .map_err(map_daos)?;
                kv_steps.push(s);
            }
        }
        // … plus an occasional shared catalogue update
        let st = self.procs.entry(proc).or_insert(ProcState {
            index_kv,
            archived: 0,
        });
        st.archived += 1;
        if st.archived % CATALOGUE_EVERY == 1 {
            let cat = self.catalogue[proc % self.catalogue.len()];
            let p = self.entry_payload(oid, len);
            let s = self
                .daos
                .borrow_mut()
                .kv_put(node, self.cid, cat, key.index_group().as_bytes(), p)
                .map_err(map_daos)?;
            kv_steps.push(s);
        }
        Ok(Step::seq([setup, s1, s2, Step::par(kv_steps)]))
    }

    fn retrieve_inner(
        &mut self,
        node: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        let &(oid, len) = self.toc.get(key).ok_or(FdbError::FieldNotFound)?;
        // find the owner's index KV (catalogue lookup happens client-side
        // against cached catalogue state, so only KV gets + data read)
        let owner = key.member as usize;
        let index_kv = self
            .procs
            .get(&owner)
            .map(|s| s.index_kv)
            .ok_or(FdbError::FieldNotFound)?;
        let keystr = key.to_string();
        let mut daos = self.daos.borrow_mut();
        let (_, s1) = daos
            .kv_get(node, self.cid, index_kv, keystr.as_bytes())
            .map_err(map_daos)?;
        // axis/metadata gets, overlapped with the data read; the length
        // comes from the index entry — no array_get_size round trip.
        let mut gets = Vec::new();
        for i in 1..self.kv_ops_per_field.saturating_sub(1) {
            let axis_key = format!("axis/{}/{}", i, keystr);
            let (_, s) = daos
                .kv_get(node, self.cid, index_kv, axis_key.as_bytes())
                .map_err(map_daos)?;
            gets.push(s);
        }
        let (data, s2) = daos
            .array_read(node, self.cid, oid, 0, len)
            .map_err(map_daos)?;
        drop(daos);
        let mut par = vec![s2];
        par.extend(gets);
        Ok((data, Step::seq([s1, Step::par(par)])))
    }
}

impl Fdb for FdbDaos {
    fn archive(
        &mut self,
        node: usize,
        proc: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError> {
        // Take the executor out so the retried closure can borrow `self`.
        let bytes = data.len();
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run_step(|| self.archive_inner(node, proc, key, data.clone()));
        self.retry = retry;
        Ok(Step::span("fdb", "archive", bytes, r?))
    }

    fn flush(&mut self, _node: usize, _proc: usize) -> Result<Step, FdbError> {
        // DAOS writes are transactional per operation; nothing buffered.
        Ok(Step::Noop)
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn list(&mut self, node: usize, query: &KeyQuery) -> Result<(Vec<FieldKey>, Step), FdbError> {
        // catalogue scan + a key enumeration on every index KV whose
        // owner could match
        let mut steps = Vec::new();
        for &cat in &self.catalogue {
            let (_, s) = self
                .daos
                .borrow_mut()
                .kv_list(node, self.cid, cat, b"")
                .map_err(map_daos)?;
            steps.push(s);
        }
        for (owner, st) in &self.procs {
            if query.member.is_some_and(|m| m as usize != *owner) {
                continue;
            }
            let (_, s) = self
                .daos
                .borrow_mut()
                .kv_list(node, self.cid, st.index_kv, b"")
                .map_err(map_daos)?;
            steps.push(s);
        }
        let mut keys: Vec<FieldKey> = self
            .toc
            .keys()
            .filter(|k| query.matches(k))
            .copied()
            .collect();
        keys.sort();
        Ok((keys, Step::span("fdb", "list", 0, Step::par(steps))))
    }

    fn retrieve(
        &mut self,
        node: usize,
        _proc: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.retrieve_inner(node, key));
        self.retry = retry;
        let (data, s) = r?;
        let bytes = data.len();
        Ok((data, Step::span("fdb", "retrieve", bytes, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::ContainerProps;
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink(SimTime::ZERO));
    }

    fn fixture(mode: DataMode) -> (Scheduler, FdbDaos) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, mode);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        (sched, fdb)
    }

    #[test]
    fn archive_retrieve_full_mode() {
        let (mut sched, mut fdb) = fixture(DataMode::Full);
        let k = FieldKey::sequence(0, 0);
        let mut rng = simkit::SplitMix64::new(6);
        let mut field = vec![0u8; 100_000];
        rng.fill_bytes(&mut field);
        exec(
            &mut sched,
            fdb.archive(0, 0, &k, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (data, s) = fdb.retrieve(0, 0, &k).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.bytes().unwrap(), &field[..]);
        assert_eq!(
            fdb.retrieve(0, 0, &FieldKey::sequence(5, 5)).unwrap_err(),
            FdbError::FieldNotFound
        );
    }

    #[test]
    fn one_array_per_field_plus_index_kvs() {
        let (mut sched, mut fdb) = fixture(DataMode::Sized);
        for i in 0..10 {
            let k = FieldKey::sequence(0, i);
            exec(
                &mut sched,
                fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap(),
            );
        }
        // 10 field arrays + 1 proc index KV + 2 catalogue KVs
        let count = fdb.daos.borrow().object_count(fdb.cid).unwrap();
        assert_eq!(count, 13);
    }

    #[test]
    fn kv_ops_per_field_matches_calibration() {
        let (mut sched, mut fdb) = fixture(DataMode::Sized);
        let k = FieldKey::sequence(0, 0);
        let step = fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap();
        // count the KV puts: entry + (kv_ops-2) axis + 1 catalogue on the
        // first archive = kv_ops_per_field total
        fn count_svc_ops(s: &Step) -> f64 {
            match s {
                Step::Transfer { units, path } if *units == 1.0 && path.len() == 1 => 1.0,
                Step::Transfer { .. } => 0.0,
                Step::Seq(v) | Step::Par(v) => v.iter().map(count_svc_ops).sum(),
                Step::Span { inner, .. } => count_svc_ops(inner),
                _ => 0.0,
            }
        }
        // 10 kv puts => 10 target-service ops (the bulk array write's
        // request service is folded into a fixed delay)
        assert_eq!(count_svc_ops(&step) as u32, 10);
        exec(&mut sched, step);
    }

    #[test]
    fn retrieve_skips_size_check() {
        // fdb-hammer's key property: no get-size round trip on read.
        let (mut sched, mut fdb) = fixture(DataMode::Sized);
        let k = FieldKey::sequence(0, 0);
        exec(
            &mut sched,
            fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap(),
        );
        let (data, s) = fdb.retrieve(0, 0, &k).unwrap();
        assert_eq!(data.len(), 1 << 20);
        exec(&mut sched, s);
    }
}

#[cfg(test)]
mod list_tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::ContainerProps;
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink);
    }

    #[test]
    fn partial_key_listing() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = daos_core::DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = std::rc::Rc::new(std::cell::RefCell::new(daos));
        let (mut fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        for member in 0..3usize {
            for i in 0..6usize {
                let k = FieldKey::sequence(member, i);
                exec(
                    &mut sched,
                    fdb.archive(0, member, &k, Payload::Sized(1024)).unwrap(),
                );
            }
        }
        let (all, s) = fdb.list(0, &KeyQuery::all()).unwrap();
        exec(&mut sched, s);
        assert_eq!(all.len(), 18);
        let (one, s) = fdb.list(0, &KeyQuery::member(1)).unwrap();
        exec(&mut sched, s);
        assert_eq!(one.len(), 6);
        assert!(one.iter().all(|k| k.member == 1));
        // compound query
        let q = KeyQuery {
            member: Some(2),
            param: Some(one[0].param),
            ..Default::default()
        };
        let (few, s) = fdb.list(0, &q).unwrap();
        exec(&mut sched, s);
        assert!(!few.is_empty() && few.len() < 6);
        let _ = SimTime::ZERO;
    }
}
