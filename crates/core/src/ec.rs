//! Systematic Reed-Solomon erasure coding over GF(256).
//!
//! DAOS erasure-codes Array data with `k` data cells and `p` parity cells
//! per stripe (the paper evaluates `EC_2P1`).  This module implements the
//! real math — a systematic generator matrix derived from a Vandermonde
//! matrix — so that in Full data mode the simulated store keeps genuine
//! parity and can reconstruct data after target loss.
//!
//! Any `k` surviving cells (data or parity) recover the stripe, because
//! every `k × k` submatrix of the generator is invertible.

/// GF(256) with the AES polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
mod gf {
    /// exp table (512 entries so mul needs no mod 255).
    pub static EXP: [u8; 512] = build_exp();
    /// log table; LOG[0] is unused.
    pub static LOG: [u8; 256] = build_log();

    const fn build_exp() -> [u8; 512] {
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        let mut i = 0;
        while i < 255 {
            exp[i] = x as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
            i += 1;
        }
        // duplicate so EXP[a + b] works for a, b < 255
        let mut j = 255;
        while j < 512 {
            exp[j] = exp[j - 255];
            j += 1;
        }
        exp
    }

    const fn build_log() -> [u8; 256] {
        let exp = build_exp();
        let mut log = [0u8; 256];
        let mut i = 0;
        while i < 255 {
            log[exp[i] as usize] = i as u8;
            i += 1;
        }
        log
    }

    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
        }
    }

    #[inline]
    pub fn inv(a: u8) -> u8 {
        debug_assert!(a != 0, "GF(256) inverse of zero");
        EXP[255 - LOG[a as usize] as usize]
    }

    #[inline]
    pub fn pow(x: u8, e: usize) -> u8 {
        if e == 0 {
            return 1;
        }
        if x == 0 {
            return 0;
        }
        EXP[(LOG[x as usize] as usize * e) % 255]
    }
}

/// An erasure code with `k` data cells and `p` parity cells.
#[derive(Debug, Clone)]
pub struct ErasureCode {
    k: usize,
    p: usize,
    /// Parity rows of the systematic generator matrix (`p × k`).
    parity_rows: Vec<Vec<u8>>,
}

impl ErasureCode {
    /// Build a `k + p` code.  Panics if `k == 0`, `p == 0` or
    /// `k + p > 255`.
    // simlint::amortized — codec tables are built once per object class at create time, not per event
    pub fn new(k: usize, p: usize) -> Self {
        assert!(k > 0 && p > 0, "need at least one data and one parity cell");
        assert!(k + p <= 255, "GF(256) supports at most 255 cells");
        // Vandermonde matrix V[(k+p) × k] with distinct points x_i = i+1,
        // then W = V · (top k rows)^-1: top of W is the identity, the
        // bottom p rows are the parity coefficients.
        let rows = k + p;
        let mut v: Vec<Vec<u8>> = (0..rows)
            .map(|i| (0..k).map(|j| gf::pow((i + 1) as u8, j)).collect())
            .collect();
        let top: Vec<Vec<u8>> = v[..k].to_vec();
        // simlint::allow(panic-path) — a Vandermonde block over GF(256) with distinct evaluation points is always invertible
        let inv = invert(&top).expect("Vandermonde top block is invertible");
        for row in v.iter_mut() {
            let orig = row.clone();
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0u8;
                for (l, &o) in orig.iter().enumerate() {
                    acc ^= gf::mul(o, inv[l][j]);
                }
                *cell = acc;
            }
        }
        // sanity: top block must now be the identity
        for (i, row) in v[..k].iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                debug_assert_eq!(c, u8::from(i == j), "systematic form violated");
            }
        }
        ErasureCode {
            k,
            p,
            parity_rows: v[k..].to_vec(),
        }
    }

    /// Data cells per stripe.
    pub fn data_cells(&self) -> usize {
        self.k
    }

    /// Parity cells per stripe.
    pub fn parity_cells(&self) -> usize {
        self.p
    }

    /// Compute the `p` parity cells for `k` equally-sized data cells.
    // simlint::allow(hot-alloc) — EC encode emits owned parity shards; full-data mode only, sized runs skip it
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "expected {} data cells", self.k);
        let len = data[0].len();
        assert!(
            data.iter().all(|c| c.len() == len),
            "cells must be equal-sized"
        );
        self.parity_rows
            .iter()
            .map(|row| {
                let mut out = vec![0u8; len];
                for (coef, cell) in row.iter().zip(data) {
                    if *coef == 0 {
                        continue;
                    }
                    for (o, &b) in out.iter_mut().zip(*cell) {
                        *o ^= gf::mul(*coef, b);
                    }
                }
                out
            })
            .collect()
    }

    /// Reconstruct the `k` data cells from any `k` surviving cells.
    ///
    /// `cells[i]` is cell `i` of the stripe (`0..k` data, `k..k+p`
    /// parity) or `None` if lost.  Returns `None` when fewer than `k`
    /// cells survive.
    // simlint::allow(panic-path) — `avail` holds only indices of Some cells (filter above), so the guarded unwraps cannot fire
    // simlint::allow(hot-alloc) — degraded-read reconstruction allocates its decode scratch per failed shard group; full-data mode only
    pub fn reconstruct(&self, cells: &[Option<Vec<u8>>]) -> Option<Vec<Vec<u8>>> {
        assert_eq!(cells.len(), self.k + self.p);
        let avail: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_some().then_some(i))
            .take(self.k)
            .collect();
        if avail.len() < self.k {
            return None;
        }
        // Fast path: all data cells survive.
        if avail.iter().all(|&i| i < self.k) {
            return Some(avail.iter().map(|&i| cells[i].clone().unwrap()).collect());
        }
        // Build the k×k generator submatrix of the surviving rows.
        let sub: Vec<Vec<u8>> = avail
            .iter()
            .map(|&i| {
                if i < self.k {
                    (0..self.k).map(|j| u8::from(i == j)).collect()
                } else {
                    self.parity_rows[i - self.k].clone()
                }
            })
            .collect();
        let inv = invert(&sub)?;
        let len = cells[avail[0]].as_ref().unwrap().len();
        let mut out = vec![vec![0u8; len]; self.k];
        for (j, orow) in out.iter_mut().enumerate() {
            for (l, &src) in avail.iter().enumerate() {
                let coef = inv[j][l];
                if coef == 0 {
                    continue;
                }
                let cell = cells[src].as_ref().unwrap();
                for (o, &b) in orow.iter_mut().zip(cell) {
                    *o ^= gf::mul(coef, b);
                }
            }
        }
        Some(out)
    }
}

/// Gauss-Jordan inversion over GF(256).  `None` if singular.
// simlint::allow(hot-alloc) — decode-matrix inversion scratch, one per reconstruct; full-data degraded reads only
fn invert(m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    debug_assert!(m.iter().all(|r| r.len() == n));
    let mut a: Vec<Vec<u8>> = m.to_vec();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        // find pivot
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let pinv = gf::inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf::mul(a[col][j], pinv);
            inv[col][j] = gf::mul(inv[col][j], pinv);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for j in 0..n {
                    let acj = a[col][j];
                    let icj = inv[col][j];
                    a[r][j] ^= gf::mul(f, acj);
                    inv[r][j] ^= gf::mul(f, icj);
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_properties() {
        for a in 0..=255u8 {
            assert_eq!(gf::mul(a, 1), a);
            assert_eq!(gf::mul(a, 0), 0);
            if a != 0 {
                assert_eq!(gf::mul(a, gf::inv(a)), 1);
            }
        }
        // commutativity spot checks
        assert_eq!(gf::mul(7, 13), gf::mul(13, 7));
        assert_eq!(gf::mul(200, 99), gf::mul(99, 200));
    }

    fn stripe(k: usize, cell: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = simkit::SplitMix64::new(seed);
        (0..k)
            .map(|_| {
                let mut c = vec![0u8; cell];
                rng.fill_bytes(&mut c);
                c
            })
            .collect()
    }

    #[test]
    fn ec_2p1_roundtrip_each_single_loss() {
        let ec = ErasureCode::new(2, 1);
        let data = stripe(2, 64, 1);
        let parity = ec.encode(&[&data[0], &data[1]]);
        for lost in 0..3 {
            let mut cells: Vec<Option<Vec<u8>>> = vec![
                Some(data[0].clone()),
                Some(data[1].clone()),
                Some(parity[0].clone()),
            ];
            cells[lost] = None;
            let rec = ec.reconstruct(&cells).expect("recoverable");
            assert_eq!(rec, data, "loss of cell {lost}");
        }
    }

    #[test]
    fn ec_4p2_roundtrip_double_loss() {
        let ec = ErasureCode::new(4, 2);
        let data = stripe(4, 32, 2);
        let refs: Vec<&[u8]> = data.iter().map(|c| c.as_slice()).collect();
        let parity = ec.encode(&refs);
        for l1 in 0..6 {
            for l2 in (l1 + 1)..6 {
                let mut cells: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                cells[l1] = None;
                cells[l2] = None;
                let rec = ec.reconstruct(&cells).expect("recoverable");
                assert_eq!(rec, data, "loss of cells {l1},{l2}");
            }
        }
    }

    #[test]
    fn too_many_losses_fail() {
        let ec = ErasureCode::new(2, 1);
        let data = stripe(2, 16, 3);
        let parity = ec.encode(&[&data[0], &data[1]]);
        let cells = vec![None, None, Some(parity[0].clone())];
        assert!(ec.reconstruct(&cells).is_none());
    }

    #[test]
    fn xor_parity_for_p1() {
        // With p = 1 the single parity row must be all-ones (pure XOR),
        // because the systematic Vandermonde construction reduces to it.
        let ec = ErasureCode::new(3, 1);
        let data = stripe(3, 8, 4);
        let parity = ec.encode(&[&data[0], &data[1], &data[2]]);
        let manual: Vec<u8> = (0..8)
            .map(|i| {
                let mixed = parity[0][i];
                // reconstructing data[0] from parity and data[1,2] must work,
                // which is the property we actually rely on; the row being
                // literally XOR is checked weakly via linearity:
                mixed
            })
            .collect();
        assert_eq!(parity[0], manual);
        let cells = vec![
            None,
            Some(data[1].clone()),
            Some(data[2].clone()),
            Some(parity[0].clone()),
        ];
        assert_eq!(ec.reconstruct(&cells).unwrap()[0], data[0]);
    }

    #[test]
    #[should_panic(expected = "equal-sized")]
    fn unequal_cells_panic() {
        let ec = ErasureCode::new(2, 1);
        ec.encode(&[&[1, 2][..], &[1][..]]);
    }

    #[test]
    fn invert_singular_returns_none() {
        let m = vec![vec![1u8, 1], vec![1u8, 1]];
        assert!(invert(&m).is_none());
    }
}
