//! Double-lookup fixture: the same map key hashed twice per body.
//!
//! `upsert` probes with `contains_key` and then inserts; `double_get`
//! fetches the same key twice.  `pair` (two distinct keys) and `bump`
//! (entry API) are the clean negatives.  The rule is body-local, so no
//! hot-root registration is needed.

use std::collections::BTreeMap;

pub struct Store {
    rows: BTreeMap<u32, u64>,
}

impl Store {
    // True positive: probe + insert on the same key (entry-API candidate).
    pub fn upsert(&mut self, key: u32, val: u64) {
        if !self.rows.contains_key(&key) {
            self.rows.insert(key, val);
        }
    }

    // True positive: the same key fetched twice.
    pub fn double_get(&self, key: u32) -> u64 {
        let a = self.rows.get(&key).copied().unwrap_or(0);
        let b = self.rows.get(&key).copied().unwrap_or(0);
        a + b
    }

    // Clean: two lookups under different keys.
    pub fn pair(&self, a: u32, b: u32) -> u64 {
        let x = self.rows.get(&a).copied().unwrap_or(0);
        let y = self.rows.get(&b).copied().unwrap_or(0);
        x + y
    }

    // Clean: the entry API hashes once.
    pub fn bump(&mut self, key: u32) {
        *self.rows.entry(key).or_insert(0) += 1;
    }
}
