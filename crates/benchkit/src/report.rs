//! Rendering figures to aligned text tables and CSV files.

use crate::figures::Figure;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Repetitions per data point (the paper uses 3).
pub const REPS: usize = 3;

/// Render a figure as an aligned text table (series as columns).
pub fn render_text(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", fig.title, fig.id);
    let _ = writeln!(out, "   y: {}", fig.y_label);
    // header
    let _ = write!(out, "{:>24}", fig.x_label);
    for s in &fig.series {
        let _ = write!(out, " | {:>24}", s.name);
    }
    let _ = writeln!(out);
    // x values union (series share x in our sweeps)
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>24}");
        for s in &fig.series {
            match s.points.get(i) {
                Some(p) => {
                    let cell = format!("{:.2} ± {:.2}", p.mean, p.std);
                    let _ = write!(out, " | {cell:>24}");
                }
                None => {
                    let _ = write!(out, " | {:>24}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a figure as CSV (`series,x,mean,std`).
pub fn render_csv(fig: &Figure) -> String {
    let mut out = String::from("series,x,mean,std\n");
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6}",
                s.name.replace(',', ";"),
                p.x,
                p.mean,
                p.std
            );
        }
    }
    out
}

/// Write a figure's CSV under `dir/<id>.csv`.
pub fn save_csv(fig: &Figure, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.csv", fig.id)), render_csv(fig))
}

/// Write a traced run's artifacts under `dir`: the Chrome trace as
/// `<stem>.trace.json` (load in Perfetto or `chrome://tracing`) and the
/// critical-path report as `<stem>.critical-path.txt`.  Both files are
/// byte-identical across replays of the same run.
pub fn save_trace(
    exports: &crate::tracing::SpanExports,
    dir: &Path,
    stem: &str,
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{stem}.trace.json")), &exports.chrome_json)?;
    fs::write(
        dir.join(format!("{stem}.critical-path.txt")),
        &exports.critical_path,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Point, Series};

    fn fig() -> Figure {
        Figure {
            id: "t1".into(),
            title: "Test".into(),
            x_label: "x".into(),
            y_label: "GiB/s".into(),
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![
                        Point {
                            x: 1.0,
                            mean: 2.5,
                            std: 0.1,
                        },
                        Point {
                            x: 2.0,
                            mean: 5.0,
                            std: 0.2,
                        },
                    ],
                },
                Series {
                    name: "b".into(),
                    points: vec![Point {
                        x: 1.0,
                        mean: 1.0,
                        std: 0.0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn text_contains_all_cells() {
        let t = render_text(&fig());
        assert!(t.contains("Test"));
        assert!(t.contains("2.50 ± 0.10"));
        assert!(t.contains("5.00 ± 0.20"));
        assert!(t.contains('-'), "missing point rendered as dash");
    }

    #[test]
    fn csv_rows() {
        let c = render_csv(&fig());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 points");
        assert_eq!(lines[0], "series,x,mean,std");
        assert!(lines[1].starts_with("a,1,"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("benchkit-test-csv");
        let _ = std::fs::remove_dir_all(&dir);
        save_csv(&fig(), &dir).unwrap();
        let s = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        assert!(s.contains("a,2,5.0"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Render a figure as an ASCII line chart (y scaled to the figure's
/// peak; one glyph per series).  Good enough to eyeball every shape the
/// paper's figures show — saturation, plateaus, crossovers.
pub fn render_chart(fig: &Figure, width: usize, height: usize) -> String {
    use std::fmt::Write as _;
    let glyphs = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    let ys: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.mean))
        .collect();
    if xs.is_empty() {
        return String::new();
    }
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let ymax = ys.iter().fold(0.0f64, |a, &v| a.max(v)).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in fig.series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for p in &s.points {
            let xf = if xmax > xmin {
                (p.x - xmin) / (xmax - xmin)
            } else {
                0.0
            };
            let yf = (p.mean / ymax).clamp(0.0, 1.0);
            let col = (xf * (width - 1) as f64).round() as usize;
            let row = height - 1 - (yf * (height - 1) as f64).round() as usize;
            grid[row][col] = g;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} [{}]", fig.title, fig.id);
    let _ = writeln!(out, "{ymax:>8.1} ┤");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "         │{line}");
    }
    let _ = writeln!(out, "{:>8.1} └{}", 0.0, "─".repeat(width));
    let _ = writeln!(out, "          x: {} ({xmin} .. {xmax})", fig.x_label);
    for (si, s) in fig.series.iter().enumerate() {
        let _ = writeln!(out, "          {} {}", glyphs[si % glyphs.len()], s.name);
    }
    out
}

#[cfg(test)]
mod chart_tests {
    use super::*;
    use crate::figures::{Figure, Point, Series};

    #[test]
    fn chart_places_extremes() {
        let fig = Figure {
            id: "c".into(),
            title: "Chart".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "s".into(),
                points: vec![
                    Point {
                        x: 1.0,
                        mean: 0.0,
                        std: 0.0,
                    },
                    Point {
                        x: 32.0,
                        mean: 100.0,
                        std: 0.0,
                    },
                ],
            }],
        };
        let chart = render_chart(&fig, 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // peak in the top grid row, zero in the bottom grid row
        assert!(lines[2].contains('o'), "top row has the peak: {chart}");
        assert!(lines[11].contains('o'), "bottom row has the zero: {chart}");
        assert!(chart.contains("s"), "legend present");
    }

    #[test]
    fn empty_figure_renders_empty() {
        let fig = Figure {
            id: "e".into(),
            title: "Empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(render_chart(&fig, 10, 5).is_empty());
    }
}
