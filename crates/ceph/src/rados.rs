//! The Ceph-like object store (librados model).
//!
//! Reproduces the §III-F baseline: 16 nodes with 16 OSDs each (one per
//! NVMe device), a monitor holding the cluster map, and placement-group
//! based object placement.  The performance-defining properties, all
//! modelled:
//!
//! * **no object sharding** — an object maps to one placement group and
//!   is served by that PG's primary OSD, so a single large object never
//!   exceeds one device's bandwidth (why IOR-per-process objects
//!   underperform, §III-F);
//! * **placement imbalance** — PGs map to OSDs by stable hashing; with
//!   few objects or few PGs, load skew *emerges* from the hash and
//!   stretches the makespan (the paper tunes `pg_num` to 1024 for this
//!   reason);
//! * **WAL write amplification** — BlueStore journals small/medium
//!   writes, multiplying device-level write bytes;
//! * **per-OSD read/write processing** — messenger/crc costs that keep
//!   Ceph below raw hardware even when balanced.

use cluster::payload::{Payload, ReadPayload};
use cluster::Topology;
use daos_core::{Retriable, RetryExec, RetryPolicy, RetryStats};
use simkit::{ResourceId, Scheduler, Step};
use std::collections::BTreeMap;

/// Data-mode mirror of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CephDataMode {
    /// Keep real bytes.
    Full,
    /// Track sizes only.
    Sized,
}

/// Errors surfaced by the librados-style API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadosError {
    /// Object does not exist.
    NoSuchObject,
    /// Write would exceed the configured maximum object size.
    ObjectTooLarge,
    /// Replica count exceeds available OSDs.
    BadPoolConfig,
}

impl Retriable for RadosError {
    /// The simulated RADOS surface has no transient failure mode today:
    /// every error is a hard precondition violation.  The classification
    /// exists so callers can wrap librados ops in the same `RetryExec`
    /// machinery as every other interface layer.
    fn is_retriable(&self) -> bool {
        false
    }
}

#[derive(Debug)]
struct RadosObject {
    size: u64,
    pg: u32,
    data: ObjectData,
}

#[derive(Debug)]
enum ObjectData {
    Bytes(Vec<u8>),
    Sized,
}

/// Pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct CephPoolOpts {
    /// Placement groups (the paper found 1024 optimal).
    pub pg_num: usize,
    /// Replica count (1 = no data protection, as in the paper's runs).
    pub replicas: usize,
    /// Erasure-coded pool: `(k, m)` data/coding chunks.  Mutually
    /// exclusive with `replicas > 1`.  This is the mechanism the paper
    /// references when noting that "Ceph cannot shard objects across
    /// OSDs unless enabling erasure-code or replication" (§III-F):
    /// with an EC profile, one object's data spreads over `k + m` OSDs.
    pub ec: Option<(u8, u8)>,
}

impl Default for CephPoolOpts {
    fn default() -> Self {
        CephPoolOpts {
            pg_num: 1024,
            replicas: 1,
            ec: None,
        }
    }
}

impl CephPoolOpts {
    /// An erasure-coded pool profile.
    pub fn erasure(k: u8, m: u8) -> Self {
        CephPoolOpts {
            pg_num: 1024,
            replicas: 1,
            ec: Some((k, m)),
        }
    }

    /// OSDs every PG maps to (replicas, or `k + m` for EC pools).
    pub fn width(&self) -> usize {
        match self.ec {
            Some((k, m)) => k as usize + m as usize,
            None => self.replicas,
        }
    }
}

/// The deployed cluster: monitor + OSDs + one pool.
// simlint::sim_state — replay-visible simulation state
pub struct CephSystem {
    topo: Topology,
    servers: usize,
    mode: CephDataMode,
    opts: CephPoolOpts,
    /// PG → OSD set (primary first), fixed at deploy (the cluster map).
    pg_map: Vec<Vec<u32>>,
    /// Per-OSD request service.
    osd_svc: Vec<ResourceId>,
    /// Per-OSD write-path processing bandwidth.
    osd_wbw: Vec<ResourceId>,
    /// Per-OSD read-path processing bandwidth.
    osd_rbw: Vec<ResourceId>,
    objects: BTreeMap<String, RadosObject>,
    wal_factor: f64,
    max_object: f64,
    op_ns: u64,
    rtt_ns: u64,
    /// Retry machinery around the data path (off by default).
    retry: RetryExec,
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CephSystem {
    /// Deploy over the first `servers` nodes of `topo` (plus an implicit
    /// monitor node), creating OSD resources and the PG map.
    pub fn deploy(
        topo: &Topology,
        sched: &mut Scheduler,
        servers: usize,
        mode: CephDataMode,
        opts: CephPoolOpts,
    ) -> Result<CephSystem, RadosError> {
        assert!(servers >= 1 && servers <= topo.server_count());
        let cal = &topo.cal;
        let total_osds = servers * cal.osds_per_server;
        if opts.replicas == 0 || opts.width() > total_osds {
            return Err(RadosError::BadPoolConfig);
        }
        if opts.ec.is_some() && opts.replicas > 1 {
            return Err(RadosError::BadPoolConfig);
        }
        let mut osd_svc = Vec::with_capacity(total_osds);
        let mut osd_wbw = Vec::with_capacity(total_osds);
        let mut osd_rbw = Vec::with_capacity(total_osds);
        for s in 0..servers {
            for o in 0..cal.osds_per_server {
                osd_svc.push(sched.add_resource(format!("ceph.osd{s}.{o}.svc"), cal.osd_svc_iops));
                osd_wbw.push(sched.add_resource(format!("ceph.osd{s}.{o}.w"), cal.osd_write_bw));
                osd_rbw.push(sched.add_resource(format!("ceph.osd{s}.{o}.r"), cal.osd_read_bw));
            }
        }
        // PG → OSD mapping.  Primaries are assigned evenly (each OSD
        // serves ⌈pg_num/total⌉ or ⌊pg_num/total⌋ primaries, shuffled):
        // real deployments run the mgr balancer/upmap to reach exactly
        // this state, and the paper's PG-count tuning presumes it.  With
        // fewer PGs than OSDs the imbalance is unavoidable — the effect
        // the `pg_num` ablation shows.  Replicas/EC shards follow by
        // stable hashing on distinct OSDs.
        let width = opts.width();
        let mut primaries: Vec<u32> = (0..opts.pg_num)
            .map(|pg| (pg % total_osds) as u32)
            .collect();
        // seeded shuffle so PG ids do not trivially encode placement
        let mut rng = simkit::SplitMix64::new(0xcef1_0000 ^ opts.pg_num as u64);
        for i in (1..primaries.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            primaries.swap(i, j);
        }
        let pg_map = (0..opts.pg_num)
            .map(|pg| {
                let mut chosen: Vec<u32> = Vec::with_capacity(width);
                chosen.push(primaries[pg]);
                let mut salt = 0u64;
                while chosen.len() < width {
                    let osd = (mix((pg as u64) << 20 | salt) % total_osds as u64) as u32;
                    if !chosen.contains(&osd) {
                        chosen.push(osd);
                    }
                    salt += 1;
                }
                chosen
            })
            .collect();
        Ok(CephSystem {
            topo: topo.clone(),
            servers,
            mode,
            opts,
            pg_map,
            osd_svc,
            osd_wbw,
            osd_rbw,
            objects: BTreeMap::new(),
            wal_factor: cal.osd_wal_factor,
            max_object: cal.rados_max_object_bytes,
            op_ns: cal.rados_op_ns,
            rtt_ns: cal.net_rtt_ns,
            retry: RetryExec::disabled(),
        })
    }

    /// Configure retry/timeout/backoff on the data path (`seed` drives
    /// the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    /// OSD nodes in the deployment.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Pool configuration.
    pub fn opts(&self) -> CephPoolOpts {
        self.opts
    }

    /// PG responsible for an object name.
    pub fn pg_of(&self, name: &str) -> u32 {
        (mix(daos_hash(name)) % self.opts.pg_num as u64) as u32
    }

    /// OSD set (primary first) for a PG.
    pub fn osds_of_pg(&self, pg: u32) -> &[u32] {
        &self.pg_map[pg as usize]
    }

    /// Number of PGs whose primary lands on each OSD (balance
    /// diagnostics; the paper tuned `pg_num` against exactly this skew).
    pub fn primary_pgs_per_osd(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.osd_svc.len()];
        for osds in &self.pg_map {
            counts[osds[0] as usize] += 1;
        }
        counts
    }

    fn osd_node_dev(&self, osd: u32) -> (usize, usize) {
        let per = self.topo.cal.osds_per_server;
        ((osd as usize) / per, (osd as usize) % per)
    }

    fn osd_write_step(&self, client: usize, osd: u32, bytes: f64) -> Step {
        let (node, devi) = self.osd_node_dev(osd);
        let srv = &self.topo.servers[node];
        let cli = &self.topo.clients[client];
        let dev = srv.nvme_w[devi % srv.nvme_w.len()];
        Step::seq([
            Step::transfer(1.0, [self.osd_svc[osd as usize]]),
            // reception and the WAL/apply drain pipeline: BlueStore
            // journals asynchronously while data keeps arriving
            Step::par([
                Step::transfer(bytes, [cli.nic_tx, srv.nic_rx, self.osd_wbw[osd as usize]]),
                Step::transfer(
                    bytes * self.wal_factor,
                    [dev, self.topo.servers[node].nvme_w_pool],
                ),
            ]),
            Step::delay(self.topo.cal.nvme_write_lat_ns),
        ])
    }

    fn osd_read_step(&self, client: usize, osd: u32, bytes: f64) -> Step {
        let (node, devi) = self.osd_node_dev(osd);
        let srv = &self.topo.servers[node];
        let cli = &self.topo.clients[client];
        let dev = srv.nvme_r[devi % srv.nvme_r.len()];
        Step::seq([
            Step::transfer(1.0, [self.osd_svc[osd as usize]]),
            Step::delay(self.topo.cal.nvme_read_lat_ns),
            Step::transfer(
                bytes,
                [
                    dev,
                    srv.nvme_r_pool,
                    self.osd_rbw[osd as usize],
                    srv.nic_tx,
                    cli.nic_rx,
                ],
            ),
        ])
    }

    /// Write `data` at `offset` of `name`, creating the object if needed.
    pub fn write(
        &mut self,
        client: usize,
        name: &str,
        offset: u64,
        data: Payload,
    ) -> Result<Step, RadosError> {
        // Take the executor out so the retried closure can borrow `self`.
        let bytes = data.len();
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run_step(|| self.write_inner(client, name, offset, data.clone()));
        self.retry = retry;
        Ok(Step::span("rados", "write", bytes, r?))
    }

    fn write_inner(
        &mut self,
        client: usize,
        name: &str,
        offset: u64,
        data: Payload,
    ) -> Result<Step, RadosError> {
        let len = data.len();
        let new_size = offset + len;
        if new_size as f64 > self.max_object {
            return Err(RadosError::ObjectTooLarge);
        }
        let pg = self.pg_of(name);
        let obj = self.objects.entry(name.to_string()).or_insert(RadosObject {
            size: 0,
            pg,
            data: match self.mode {
                CephDataMode::Full => ObjectData::Bytes(Vec::new()),
                CephDataMode::Sized => ObjectData::Sized,
            },
        });
        obj.size = obj.size.max(new_size);
        if let ObjectData::Bytes(buf) = &mut obj.data {
            let end = new_size as usize;
            if buf.len() < end {
                buf.resize(end, 0);
            }
            match data.bytes() {
                Some(bytes) => buf[offset as usize..end].copy_from_slice(bytes),
                None => buf[offset as usize..end].fill(0),
            }
        }
        let osds = self.pg_map[pg as usize].clone();
        let step = match self.opts.ec {
            // EC pool: the object's stripe spreads over k data + m coding
            // chunks on distinct OSDs — this is how Ceph *does* shard
            Some((k, m)) => {
                let cell = len as f64 / k as f64;
                let writes = osds[..(k as usize + m as usize)]
                    .iter()
                    .map(|&o| self.osd_write_step(client, o, cell))
                    .collect::<Vec<_>>();
                Step::seq([
                    Step::delay(self.op_ns),
                    Step::delay(self.rtt_ns),
                    Step::par(writes),
                ])
            }
            // primary-copy replication: client sends to the primary,
            // which fans out to the replicas before acking
            None => {
                let primary = self.osd_write_step(client, osds[0], len as f64);
                let replicas = osds[1..]
                    .iter()
                    .map(|&o| self.osd_write_step(client, o, len as f64))
                    .collect::<Vec<_>>();
                Step::seq([
                    Step::delay(self.op_ns),
                    Step::delay(self.rtt_ns),
                    primary,
                    Step::par(replicas),
                ])
            }
        };
        Ok(step)
    }

    /// Append to an object (fdb-style usage).
    pub fn append(&mut self, client: usize, name: &str, data: Payload) -> Result<Step, RadosError> {
        let off = self.objects.get(name).map_or(0, |o| o.size);
        self.write(client, name, off, data)
    }

    /// Read `len` bytes at `offset` from the PG's primary OSD.
    pub fn read(
        &mut self,
        client: usize,
        name: &str,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), RadosError> {
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.read_inner(client, name, offset, len));
        self.retry = retry;
        let (data, s) = r?;
        Ok((data, Step::span("rados", "read", len, s)))
    }

    fn read_inner(
        &mut self,
        client: usize,
        name: &str,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), RadosError> {
        let obj = self.objects.get(name).ok_or(RadosError::NoSuchObject)?;
        let data = match &obj.data {
            ObjectData::Bytes(buf) => {
                let mut out = vec![0u8; len as usize];
                let end = ((offset + len) as usize).min(buf.len());
                if (offset as usize) < end {
                    out[..end - offset as usize].copy_from_slice(&buf[offset as usize..end]);
                }
                ReadPayload::Bytes(out)
            }
            ObjectData::Sized => ReadPayload::Sized(len),
        };
        let osds = &self.pg_map[obj.pg as usize];
        let step = match self.opts.ec {
            // EC pool: read the k data chunks in parallel
            Some((k, _)) => {
                let cell = len as f64 / k as f64;
                let reads = osds[..k as usize]
                    .iter()
                    .map(|&o| self.osd_read_step(client, o, cell))
                    .collect::<Vec<_>>();
                Step::seq([
                    Step::delay(self.op_ns),
                    Step::delay(self.rtt_ns),
                    Step::par(reads),
                ])
            }
            None => Step::seq([
                Step::delay(self.op_ns),
                Step::delay(self.rtt_ns),
                self.osd_read_step(client, osds[0], len as f64),
            ]),
        };
        Ok((data, step))
    }

    /// Object size (`rados stat`).
    pub fn stat(&mut self, _client: usize, name: &str) -> Result<(u64, Step), RadosError> {
        let obj = self.objects.get(name).ok_or(RadosError::NoSuchObject)?;
        let primary = self.pg_map[obj.pg as usize][0];
        let step = Step::span(
            "rados",
            "stat",
            0,
            Step::seq([
                Step::delay(self.op_ns),
                Step::delay(self.rtt_ns),
                Step::transfer(1.0, [self.osd_svc[primary as usize]]),
            ]),
        );
        Ok((obj.size, step))
    }

    /// Remove an object.
    pub fn remove(&mut self, client: usize, name: &str) -> Result<Step, RadosError> {
        let obj = self.objects.remove(name).ok_or(RadosError::NoSuchObject)?;
        let osds = self.pg_map[obj.pg as usize].clone();
        let ops = osds
            .iter()
            .map(|&o| self.osd_write_step(client, o, 64.0))
            .collect::<Vec<_>>();
        Ok(Step::span(
            "rados",
            "remove",
            0,
            Step::seq([
                Step::delay(self.op_ns),
                Step::delay(self.rtt_ns),
                Step::par(ops),
            ]),
        ))
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

/// Stable name hash (rjenkins-flavoured in real Ceph; splitmix here).
fn daos_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, GIB, MIB};
    use simkit::{run, OpId, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn system(servers: usize, clients: usize, opts: CephPoolOpts) -> (Scheduler, CephSystem) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(servers, clients).build(&mut sched);
        let sys = CephSystem::deploy(&topo, &mut sched, servers, CephDataMode::Full, opts).unwrap();
        (sched, sys)
    }

    #[test]
    fn object_round_trip() {
        let (mut sched, mut ceph) = system(2, 1, CephPoolOpts::default());
        let data: Vec<u8> = (0..255u8).collect();
        exec(
            &mut sched,
            ceph.write(0, "obj.1", 0, Payload::Bytes(data.clone()))
                .unwrap(),
        );
        let (r, s) = ceph.read(0, "obj.1", 0, 255).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        let (size, s) = ceph.stat(0, "obj.1").unwrap();
        exec(&mut sched, s);
        assert_eq!(size, 255);
        exec(&mut sched, ceph.remove(0, "obj.1").unwrap());
        assert_eq!(
            ceph.read(0, "obj.1", 0, 1).unwrap_err(),
            RadosError::NoSuchObject
        );
    }

    #[test]
    fn append_extends() {
        let (mut sched, mut ceph) = system(1, 1, CephPoolOpts::default());
        exec(
            &mut sched,
            ceph.append(0, "o", Payload::Bytes(vec![1; 10])).unwrap(),
        );
        exec(
            &mut sched,
            ceph.append(0, "o", Payload::Bytes(vec![2; 10])).unwrap(),
        );
        let (r, s) = ceph.read(0, "o", 0, 20).unwrap();
        exec(&mut sched, s);
        let b = r.bytes().unwrap();
        assert_eq!(&b[..10], &[1; 10]);
        assert_eq!(&b[10..], &[2; 10]);
    }

    #[test]
    fn max_object_size_enforced() {
        let (_sched, mut ceph) = system(1, 1, CephPoolOpts::default());
        let too_big = (132.0 * MIB) as u64 + 1;
        assert_eq!(
            ceph.write(0, "big", 0, Payload::Sized(too_big))
                .unwrap_err(),
            RadosError::ObjectTooLarge
        );
        assert!(ceph.write(0, "ok", 0, Payload::Sized(too_big - 1)).is_ok());
    }

    #[test]
    fn wal_amplification_hits_device() {
        let mut sched = Scheduler::with_monitor();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            1,
            CephDataMode::Sized,
            CephPoolOpts::default(),
        )
        .unwrap();
        exec(
            &mut sched,
            ceph.write(0, "o", 0, Payload::Sized(1 << 20)).unwrap(),
        );
        let dev_bytes: f64 = topo.servers[0]
            .nvme_w
            .iter()
            .map(|&r| sched.monitor().units(r))
            .sum();
        let expect = (1u64 << 20) as f64 * topo.cal.osd_wal_factor;
        assert!(
            (dev_bytes - expect).abs() < 1.0,
            "dev {dev_bytes} vs {expect}"
        );
    }

    #[test]
    fn replication_writes_all_copies() {
        let mut sched = Scheduler::with_monitor();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            CephDataMode::Sized,
            CephPoolOpts {
                pg_num: 64,
                replicas: 3,
                ec: None,
            },
        )
        .unwrap();
        exec(
            &mut sched,
            ceph.write(0, "o", 0, Payload::Sized(1 << 20)).unwrap(),
        );
        let dev_bytes: f64 = topo
            .servers
            .iter()
            .flat_map(|s| s.nvme_w.iter())
            .map(|&r| sched.monitor().units(r))
            .sum();
        let expect = 3.0 * (1u64 << 20) as f64 * topo.cal.osd_wal_factor;
        assert!(
            (dev_bytes - expect).abs() < 1.0,
            "dev {dev_bytes} vs {expect}"
        );
    }

    #[test]
    fn more_pgs_engage_more_osds() {
        // with the balancer-even primary assignment, the pg_num effect
        // is coverage: fewer PGs than OSDs leaves OSDs without any
        // primaries at all
        let coverage = |pg_num: usize| {
            let (_s, ceph) = system(
                4,
                1,
                CephPoolOpts {
                    pg_num,
                    replicas: 1,
                    ec: None,
                },
            );
            ceph.primary_pgs_per_osd()
                .iter()
                .filter(|&&c| c > 0)
                .count()
        };
        assert_eq!(coverage(24), 24, "24 PGs engage 24 of 64 OSDs");
        assert_eq!(coverage(1024), 64, "plenty of PGs engage every OSD");
        // and counts are near-even when PGs are plentiful
        let (_s, ceph) = system(
            4,
            1,
            CephPoolOpts {
                pg_num: 1024,
                replicas: 1,
                ec: None,
            },
        );
        let counts = ceph.primary_pgs_per_osd();
        assert!(
            counts.iter().all(|&c| c == 16),
            "1024/64 = 16 each: {counts:?}"
        );
    }

    #[test]
    fn pg_mapping_is_stable_and_replicas_distinct() {
        let (_s, ceph) = system(
            2,
            1,
            CephPoolOpts {
                pg_num: 128,
                replicas: 3,
                ec: None,
            },
        );
        assert_eq!(ceph.pg_of("x"), ceph.pg_of("x"));
        for pg in 0..128u32 {
            let osds = ceph.osds_of_pg(pg);
            let mut u = osds.to_vec();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), 3);
        }
    }

    #[test]
    fn single_object_bound_by_one_osd() {
        // 100 MiB to one object: one device + one OSD write path; no
        // sharding means the other 15 devices stay idle.
        let mut sched = Scheduler::with_monitor();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            1,
            CephDataMode::Sized,
            CephPoolOpts::default(),
        )
        .unwrap();
        exec(
            &mut sched,
            ceph.write(0, "o", 0, Payload::Sized(100 << 20)).unwrap(),
        );
        let active_devs = topo.servers[0]
            .nvme_w
            .iter()
            .filter(|&&r| sched.monitor().units(r) > 0.0)
            .count();
        assert_eq!(active_devs, 1, "no sharding in RADOS");
        // the single stream is paced by the tighter of the OSD write
        // path and the device (burst) behind the WAL
        let bw_bound = topo
            .cal
            .osd_write_bw
            .min(topo.cal.nvme_dev_write_bw() * topo.cal.nvme_dev_burst / topo.cal.osd_wal_factor);
        assert!(
            sched.now().as_secs_f64() >= (100 << 20) as f64 / bw_bound * 0.99,
            "single-object stream cannot beat one OSD: {} s",
            sched.now().as_secs_f64()
        );
        let _ = GIB;
    }
}

#[cfg(test)]
mod ec_pool_tests {
    use super::*;
    use cluster::{ClusterSpec, GIB, MIB};
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    #[test]
    fn ec_pool_shards_one_object_across_osds() {
        let mut sched = Scheduler::with_monitor();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            CephDataMode::Sized,
            CephPoolOpts::erasure(4, 2),
        )
        .unwrap();
        exec(
            &mut sched,
            ceph.write(0, "striped", 0, Payload::Sized(64 << 20))
                .unwrap(),
        );
        let active: usize = topo
            .servers
            .iter()
            .flat_map(|s| s.nvme_w.iter())
            .filter(|&&r| sched.monitor().units(r) > 0.0)
            .count();
        assert_eq!(active, 6, "k+m = 6 devices carry the object");
        // write amplification (k+m)/k on top of WAL
        let total: f64 = topo
            .servers
            .iter()
            .flat_map(|s| s.nvme_w.iter())
            .map(|&r| sched.monitor().units(r))
            .sum();
        let expect = (64u64 << 20) as f64 * 1.5 * topo.cal.osd_wal_factor;
        assert!((total - expect).abs() < 1.0, "{total} vs {expect}");
    }

    #[test]
    fn ec_pool_large_object_faster_than_plain_pool() {
        // the paper's point: without EC/replication a RADOS object is
        // single-OSD-bound; an EC profile shards it
        let run_one = |opts: CephPoolOpts| {
            let mut sched = Scheduler::new();
            let topo = ClusterSpec::new(2, 1).build(&mut sched);
            let mut ceph =
                CephSystem::deploy(&topo, &mut sched, 2, CephDataMode::Sized, opts).unwrap();
            exec(
                &mut sched,
                ceph.write(0, "big", 0, Payload::Sized(100 << 20)).unwrap(),
            )
        };
        let plain = run_one(CephPoolOpts::default());
        let ec = run_one(CephPoolOpts::erasure(4, 2));
        assert!(
            ec < plain * 0.6,
            "EC stripes must beat single-OSD: {ec:.3}s vs {plain:.3}s"
        );
        let _ = (GIB, MIB);
    }

    #[test]
    fn ec_pool_round_trips_bytes() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            CephDataMode::Full,
            CephPoolOpts::erasure(2, 1),
        )
        .unwrap();
        let mut rng = simkit::SplitMix64::new(3);
        let mut data = vec![0u8; 100_000];
        rng.fill_bytes(&mut data);
        exec(
            &mut sched,
            ceph.write(0, "o", 0, Payload::Bytes(data.clone())).unwrap(),
        );
        let (got, s) = ceph.read(0, "o", 0, data.len() as u64).unwrap();
        exec(&mut sched, s);
        assert_eq!(got.bytes().unwrap(), &data[..]);
    }

    #[test]
    fn ec_with_replicas_rejected() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let opts = CephPoolOpts {
            pg_num: 64,
            replicas: 2,
            ec: Some((2, 1)),
        };
        match CephSystem::deploy(&topo, &mut sched, 1, CephDataMode::Sized, opts) {
            Err(RadosError::BadPoolConfig) => {}
            Err(e) => panic!("wrong error {e:?}"),
            Ok(_) => panic!("EC + replicas must be rejected"),
        }
    }
}
