//! Automatic paper-vs-reproduction verdicts.
//!
//! Every qualitative claim a figure carries is encoded as a check over
//! the regenerated figure data; `evaluate` runs all checks whose figures
//! are present and reports PASS/FAIL.  This is the machine-checkable
//! form of `EXPERIMENTS.md`.

use crate::figures::{peak, Figure};

/// A single claim check.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Short claim identifier.
    pub claim: String,
    /// What the paper says.
    pub expectation: String,
    /// Whether the regenerated data satisfies it.
    pub pass: bool,
    /// The measured evidence.
    pub evidence: String,
}

fn find<'a>(figs: &'a [Figure], id: &str) -> Option<&'a Figure> {
    figs.iter().find(|f| f.id == id)
}

fn check(
    out: &mut Vec<Verdict>,
    claim: &str,
    expectation: &str,
    figs: &[Figure],
    ids: &[&str],
    eval: impl Fn(&[&Figure]) -> (bool, String),
) {
    let resolved: Vec<&Figure> = ids.iter().filter_map(|id| find(figs, id)).collect();
    if resolved.len() != ids.len() {
        return; // figure(s) not part of this run
    }
    let (pass, evidence) = eval(&resolved);
    out.push(Verdict {
        claim: claim.into(),
        expectation: expectation.into(),
        pass,
        evidence,
    });
}

/// Evaluate every applicable claim against a set of regenerated figures.
pub fn evaluate(figs: &[Figure]) -> Vec<Verdict> {
    let mut v = Vec::new();

    check(
        &mut v,
        "C1-write",
        "IOR/libdaos write approaches the 61.76 GiB/s optimum at 16 servers",
        figs,
        &["fig1a"],
        |f| {
            let p = peak(f[0]);
            (p > 50.0 && p < 64.0, format!("peak {p:.1} GiB/s"))
        },
    );
    check(
        &mut v,
        "C1-read",
        "IOR/libdaos read approaches ~90 GiB/s at 16 servers",
        figs,
        &["fig1b"],
        |f| {
            let p = peak(f[0]);
            (p > 75.0 && p < 100.0, format!("peak {p:.1} GiB/s"))
        },
    );
    check(
        &mut v,
        "C1-apis",
        "all four APIs converge for 1 MiB transfers (within 15%)",
        figs,
        &["fig1a", "fig1c", "fig1e", "fig1g"],
        |f| {
            let peaks: Vec<f64> = f.iter().map(|x| peak(x)).collect();
            let max = peaks.iter().cloned().fold(0.0f64, f64::max);
            let min = peaks.iter().cloned().fold(f64::MAX, f64::min);
            (min > max * 0.85, format!("peaks {peaks:.1?} GiB/s"))
        },
    );
    check(
        &mut v,
        "Fig2-IL",
        "interception library beats DFUSE clearly at 1 KiB",
        figs,
        &["fig2a", "fig2c"],
        |f| {
            let (dfuse, il) = (peak(f[0]), peak(f[1]));
            (
                il > dfuse * 2.0,
                format!("DFUSE {dfuse:.0} vs IL {il:.0} KIOPS"),
            )
        },
    );
    check(
        &mut v,
        "C2-apps",
        "Field I/O and fdb-hammer reach IOR-class write bandwidth",
        figs,
        &["fig3e", "fig3g", "fig1a"],
        |f| {
            let (fio, fdb, ior) = (peak(f[0]), peak(f[1]), peak(f[2]));
            (
                fio > ior * 0.8 && fdb > ior * 0.85,
                format!("FieldIO {fio:.1}, fdb {fdb:.1}, IOR {ior:.1} GiB/s"),
            )
        },
    );
    check(
        &mut v,
        "C2-fieldio-read",
        "Field I/O reads trail fdb-hammer's (size checks)",
        figs,
        &["fig3f", "fig3h"],
        |f| {
            let (fio, fdb) = (peak(f[0]), peak(f[1]));
            (fio < fdb, format!("FieldIO {fio:.1} vs fdb {fdb:.1} GiB/s"))
        },
    );
    check(
        &mut v,
        "C2-hdf5",
        "HDF5 runs are inferior; HDF5/libdaos worst",
        figs,
        &["fig3a", "fig3c", "fig1a"],
        |f| {
            let (dfuse, vol, ior) = (peak(f[0]), peak(f[1]), peak(f[2]));
            (
                dfuse < ior * 0.75 && vol < dfuse,
                format!("HDF5/IL {dfuse:.1}, HDF5/VOL {vol:.1}, IOR {ior:.1} GiB/s"),
            )
        },
    );
    check(
        &mut v,
        "Fig4-hdf5-small",
        "HDF5/libdaos keeps up with IOR at 4 servers",
        figs,
        &["fig4a", "fig4c"],
        |f| {
            let (ior, vol) = (peak(f[0]), peak(f[1]));
            (
                vol > ior * 0.8,
                format!("IOR {ior:.1} vs HDF5 {vol:.1} GiB/s"),
            )
        },
    );
    check(
        &mut v,
        "Fig5-scaling",
        "IOR scales ~linearly from 16 to 24 servers",
        figs,
        &["fig5a"],
        |f| {
            let s = f[0]
                .series
                .iter()
                .find(|s| s.name.contains("libdaos"))
                .unwrap();
            let y16 = s
                .points
                .iter()
                .find(|p| p.x == 16.0)
                .map(|p| p.mean)
                .unwrap_or(0.0);
            let y24 = s
                .points
                .iter()
                .find(|p| p.x == 24.0)
                .map(|p| p.mean)
                .unwrap_or(0.0);
            let ratio = y24 / y16.max(1e-9);
            (
                (1.3..1.65).contains(&ratio),
                format!("16→24 servers: {y16:.1} → {y24:.1} ({ratio:.2}x)"),
            )
        },
    );
    check(
        &mut v,
        "C3-ec-write",
        "EC 2+1 write lands near 2/3 of the unprotected rate (~40 GiB/s)",
        figs,
        &["fig6a", "fig1a"],
        |f| {
            let (ec, plain) = (peak(f[0]), peak(f[1]));
            let ratio = ec / plain.max(1e-9);
            (
                (0.55..0.8).contains(&ratio),
                format!("EC {ec:.1} vs plain {plain:.1} ({ratio:.2})"),
            )
        },
    );
    check(
        &mut v,
        "C3-ec-read",
        "EC 2+1 read is unharmed",
        figs,
        &["fig6b", "fig1b"],
        |f| {
            let ratio = peak(f[0]) / peak(f[1]).max(1e-9);
            ((0.85..1.15).contains(&ratio), format!("ratio {ratio:.2}"))
        },
    );
    check(
        &mut v,
        "C4-lustre-read",
        "fdb-hammer reads on Lustre cap near 40 GiB/s (MDS)",
        figs,
        &["fig7b"],
        |f| {
            let p = peak(f[0]);
            ((30.0..50.0).contains(&p), format!("peak {p:.1} GiB/s"))
        },
    );
    check(
        &mut v,
        "C4-lustre-write",
        "fdb-hammer writes on Lustre reach IOR-class bandwidth",
        figs,
        &["fig7a", "fig1a"],
        |f| {
            let ratio = peak(f[0]) / peak(f[1]).max(1e-9);
            (ratio > 0.75, format!("ratio {ratio:.2}"))
        },
    );
    check(
        &mut v,
        "C4-ceph",
        "fdb-hammer on Ceph: ~40 write / ~70 read GiB/s",
        figs,
        &["fig8a", "fig8b"],
        |f| {
            let (w, r) = (peak(f[0]), peak(f[1]));
            (
                (30.0..48.0).contains(&w) && (55.0..85.0).contains(&r),
                format!("write {w:.1}, read {r:.1} GiB/s"),
            )
        },
    );
    check(
        &mut v,
        "C4-ordering",
        "only DAOS is fast for both bulk and small/metadata I/O",
        figs,
        &["fig9a", "fig9b"],
        |f| {
            let top = |fig: &Figure, name: &str| {
                fig.series
                    .iter()
                    .find(|s| s.name.contains(name))
                    .map(|s| s.points.iter().map(|p| p.mean).fold(0.0f64, f64::max))
                    .unwrap_or(0.0)
            };
            let dw = top(f[0], "libdaos");
            let lw = top(f[0], "Lustre");
            let cw = top(f[0], "librados");
            let dr = top(f[1], "libdaos");
            let lr = top(f[1], "Lustre");
            let cr = top(f[1], "librados");
            (
                dw >= lw * 0.95 && dw > cw && dr > lr && dr > cr && lr < dr * 0.75,
                format!("write D/L/C {dw:.1}/{lw:.1}/{cw:.1}; read {dr:.1}/{lr:.1}/{cr:.1}"),
            )
        },
    );
    check(
        &mut v,
        "T-ior-ceph",
        "IOR on Ceph reaches roughly half of DAOS",
        figs,
        &["ior-ceph", "fig1a", "fig1b"],
        |f| {
            let w = f[0]
                .series
                .iter()
                .find(|s| s.name == "write")
                .map(|s| s.points.iter().map(|p| p.mean).fold(0.0f64, f64::max))
                .unwrap_or(0.0);
            let r = f[0]
                .series
                .iter()
                .find(|s| s.name == "read")
                .map(|s| s.points.iter().map(|p| p.mean).fold(0.0f64, f64::max))
                .unwrap_or(0.0);
            let (dw, dr) = (peak(f[1]), peak(f[2]));
            (
                w < dw * 0.65 && r < dr * 0.65,
                format!("Ceph {w:.1}/{r:.1} vs DAOS {dw:.1}/{dr:.1} GiB/s"),
            )
        },
    );
    check(
        &mut v,
        "T-ior-lustre",
        "IOR on Lustre performs like IOR on DAOS",
        figs,
        &["ior-lustre", "fig1a"],
        |f| {
            let w = f[0]
                .series
                .iter()
                .find(|s| s.name == "write")
                .map(|s| s.points.iter().map(|p| p.mean).fold(0.0f64, f64::max))
                .unwrap_or(0.0);
            let ratio = w / peak(f[1]).max(1e-9);
            (ratio > 0.8, format!("ratio {ratio:.2}"))
        },
    );

    v
}

/// Render verdicts as an aligned table.
pub fn render(verdicts: &[Verdict]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<18} {:<6} evidence", "claim", "result");
    for v in verdicts {
        let _ = writeln!(
            out,
            "{:<18} {:<6} {}  [{}]",
            v.claim,
            if v.pass { "PASS" } else { "FAIL" },
            v.evidence,
            v.expectation
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Point, Series};

    fn fig(id: &str, peak_val: f64) -> Figure {
        Figure {
            id: id.into(),
            title: id.into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "IOR/libdaos".into(),
                points: vec![Point {
                    x: 16.0,
                    mean: peak_val,
                    std: 0.0,
                }],
            }],
        }
    }

    #[test]
    fn missing_figures_skip_checks() {
        let verdicts = evaluate(&[]);
        assert!(verdicts.is_empty());
    }

    #[test]
    fn c1_write_passes_in_range() {
        let verdicts = evaluate(&[fig("fig1a", 57.0)]);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].pass, "{verdicts:?}");
        let verdicts = evaluate(&[fig("fig1a", 20.0)]);
        assert!(!verdicts[0].pass);
    }

    #[test]
    fn render_contains_results() {
        let verdicts = evaluate(&[fig("fig1a", 57.0)]);
        let text = render(&verdicts);
        assert!(text.contains("PASS"));
        assert!(text.contains("C1-write"));
    }
}
