//! Integration tests for the workload adapters and the measurement
//! protocol.

use benchkit::scenarios::{run_scenario, RunSpec, Scenario};
use benchkit::workloads::{FdbWorkload, FieldIoWorkload};
use benchkit::{run_phase, Stats};
use cluster::bench::{Phase, ProcWorkload};
use cluster::{Calibration, ClusterSpec, GIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use fdb_sim::FdbDaos;
use field_io::FieldIo;
use simkit::{run, OpId, Scheduler, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn daos_fixture(
    servers: usize,
    clients: usize,
) -> (Scheduler, Rc<RefCell<DaosSystem>>, daos_core::ContainerId) {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(servers, clients).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, servers, DataMode::Sized);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Sink);
    (sched, Rc::new(RefCell::new(daos)), cid)
}

#[test]
fn fieldio_workload_write_then_read_phases() {
    let (mut sched, daos, cid) = daos_fixture(2, 2);
    let (fio, s) = FieldIo::new(daos, 0, cid).unwrap();
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Sink);
    let mut wl = FieldIoWorkload::new(fio, 8, 2, 12, 1 << 20);
    let w = run_phase(&mut sched, &mut wl);
    assert_eq!(w.ops, 96);
    assert!(
        w.bandwidth() > 0.1 * GIB,
        "write bw {}",
        w.bandwidth() / GIB
    );
    wl.phase = Phase::Read;
    let r = run_phase(&mut sched, &mut wl);
    assert_eq!(r.ops, 96);
    assert!(r.bandwidth() > w.bandwidth() * 0.5);
}

#[test]
fn fdb_workload_counts_buffered_finalize_in_window() {
    let (mut sched, daos, cid) = daos_fixture(2, 2);
    let (fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Sink);
    let mut wl = FdbWorkload::new(fdb, 4, 2, 10, 1 << 20);
    assert!(
        wl.finalize_in_window(),
        "write phase flushes inside the window"
    );
    let w = run_phase(&mut sched, &mut wl);
    assert_eq!(w.ops, 40);
    wl.phase = Phase::Read;
    assert!(!wl.finalize_in_window());
    let r = run_phase(&mut sched, &mut wl);
    assert_eq!(r.ops, 40);
}

#[test]
fn scenario_results_are_deterministic_for_same_seed() {
    let cal = Calibration::default();
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 16;
    let a = run_scenario(&spec, Scenario::IorDaos, &cal);
    let b = run_scenario(&spec, Scenario::IorDaos, &cal);
    assert_eq!(a.write.seconds, b.write.seconds, "bit-identical reruns");
    assert_eq!(a.read.seconds, b.read.seconds);
}

#[test]
fn every_scenario_runs_at_toy_scale() {
    let cal = Calibration::default();
    let mut spec = RunSpec::new(2, 2, 2);
    spec.ops_per_proc = 6;
    for scen in [
        Scenario::IorDaos,
        Scenario::IorDfs,
        Scenario::IorDfuse,
        Scenario::IorDfuseIl,
        Scenario::IorHdf5DfuseIl,
        Scenario::IorHdf5Daos,
        Scenario::FieldIo,
        Scenario::FdbDaos,
        Scenario::IorLustre,
        Scenario::FdbLustre,
        Scenario::IorCeph,
        Scenario::FdbCeph,
    ] {
        let r = run_scenario(&spec, scen, &cal);
        assert!(
            r.write.bandwidth() > 0.0 && r.read.bandwidth() > 0.0,
            "{} produced zero bandwidth",
            scen.name()
        );
    }
}

#[test]
fn stats_spread_comes_from_perturbation() {
    let s = Stats::from(&[1.0, 1.1, 0.9]);
    assert!((s.mean - 1.0).abs() < 1e-12);
    assert!(s.std > 0.0);
}

#[test]
fn queue_depth_raises_single_process_bandwidth() {
    // one process, QD 1 vs QD 8 against an 8-server pool: pipelining
    // through the event queue overlaps transfers on distinct targets
    let run_qd = |qd: usize| {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(8, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 8, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let mut cfg = ior_bench::IorConfig::new(1, 1, 64);
        cfg.queue_depth = qd;
        let mut ior = ior_bench::Ior::new(
            cfg,
            ior_bench::IorBackend::Daos {
                daos: Rc::new(RefCell::new(daos)),
                cid,
                oclass: ObjectClass::SX,
            },
        );
        run_phase(&mut sched, &mut ior).bandwidth()
    };
    let qd1 = run_qd(1);
    let qd8 = run_qd(8);
    assert!(
        qd8 > qd1 * 3.0,
        "QD8 must overlap device transfers: {:.2} vs {:.2} GiB/s",
        qd8 / GIB,
        qd1 / GIB
    );
}

#[test]
fn mdtest_scenario_daos_vs_lustre() {
    use benchkit::scenarios::{run_mdtest, MdStore};
    let cal = Calibration::default();
    let mut spec = RunSpec::new(4, 4, 16);
    spec.ops_per_proc = 24;
    let daos = run_mdtest(&spec, MdStore::Dfuse, &cal);
    let lustre = run_mdtest(&spec, MdStore::Lustre, &cal);
    for (i, name) in ["create", "stat", "remove"].iter().enumerate() {
        assert!(daos[i].iops() > 0.0, "daos {name}");
        assert!(lustre[i].iops() > 0.0, "lustre {name}");
    }
    // at modest client load both are live; the scaling divergence is
    // covered by the metadata_stress example and the mdtest figure
}
