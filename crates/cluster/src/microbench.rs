//! Raw-hardware micro-benchmarks (§III-A of the paper).
//!
//! The paper measures the NVMe devices with parallel `dd` runs (1000
//! blocks of 100 MiB per device) and the network with `iperf`.  These
//! functions run the equivalent workloads on the simulated hardware and
//! return the aggregate bandwidths used as the "calculated optimum"
//! baselines in every figure.

use crate::spec::ClusterSpec;
use crate::units::MIB;
use simkit::{run, OpId, Scheduler, SimTime, Step, World};

/// Result of a micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicroResult {
    /// Bytes moved in total.
    // simlint::dim(bytes)
    pub bytes: f64,
    /// Wall-clock seconds (simulated).
    pub seconds: f64,
}

impl MicroResult {
    /// Aggregate bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds
        } else {
            0.0
        }
    }
}

struct LastDone(SimTime);
impl World for LastDone {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

/// `dd`-equivalent: stream `blocks × block_bytes` to every NVMe device of
/// one server in parallel, write or read direction.
pub fn dd_all_devices(blocks: u64, block_bytes: f64, write: bool) -> MicroResult {
    let mut sched = Scheduler::new();
    let spec = ClusterSpec::new(1, 0);
    let topo = spec.build(&mut sched);
    let srv = &topo.servers[0];
    let (devs, pool) = if write {
        (&srv.nvme_w, srv.nvme_w_pool)
    } else {
        (&srv.nvme_r, srv.nvme_r_pool)
    };
    let total = blocks as f64 * block_bytes;
    for &dev in devs {
        // dd streams sequentially; in the fluid model one long transfer
        // per device is equivalent to 1000 back-to-back blocks.
        sched.submit(Step::transfer(total, [dev, pool]), OpId(0));
    }
    let mut w = LastDone(SimTime::ZERO);
    run(&mut sched, &mut w);
    MicroResult {
        bytes: total * devs.len() as f64,
        seconds: w.0.as_secs_f64(),
    }
}

/// `iperf`-equivalent: one bulk stream between a client and a server.
pub fn iperf(bytes: f64, client_to_server: bool) -> MicroResult {
    let mut sched = Scheduler::new();
    let spec = ClusterSpec::new(1, 1);
    let topo = spec.build(&mut sched);
    let path = if client_to_server {
        topo.net_to_server(0, 0)
    } else {
        topo.net_to_client(0, 0)
    };
    sched.submit(Step::transfer(bytes, path), OpId(0));
    let mut w = LastDone(SimTime::ZERO);
    run(&mut sched, &mut w);
    MicroResult {
        bytes,
        seconds: w.0.as_secs_f64(),
    }
}

/// The full §III-A hardware table: (dd write, dd read, iperf up, iperf
/// down) aggregate bandwidths in bytes/s.
pub fn hardware_table() -> [MicroResult; 4] {
    [
        dd_all_devices(1000, 100.0 * MIB, true),
        dd_all_devices(1000, 100.0 * MIB, false),
        iperf(50.0 * 1024.0 * MIB, true),
        iperf(50.0 * 1024.0 * MIB, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn dd_matches_paper_aggregates() {
        let w = dd_all_devices(100, 100.0 * MIB, true);
        assert!(
            (w.bandwidth() / GIB - 3.86).abs() < 0.01,
            "{}",
            w.bandwidth() / GIB
        );
        let r = dd_all_devices(100, 100.0 * MIB, false);
        assert!(
            (r.bandwidth() / GIB - 7.0).abs() < 0.01,
            "{}",
            r.bandwidth() / GIB
        );
    }

    #[test]
    fn iperf_matches_50gbps() {
        for dir in [true, false] {
            let m = iperf(10.0 * GIB, dir);
            assert!((m.bandwidth() / GIB - 6.25).abs() < 0.01);
        }
    }

    #[test]
    fn hardware_table_is_consistent() {
        let t = hardware_table();
        assert!(
            t[0].bandwidth() < t[1].bandwidth(),
            "write slower than read"
        );
        assert!(
            (t[2].bandwidth() - t[3].bandwidth()).abs() < 1.0,
            "symmetric net"
        );
    }
}
