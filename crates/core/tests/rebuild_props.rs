//! Property tests for rebuild: after a rebuild pass with sufficient
//! redundancy, no layout references a down target and all data is
//! readable at full health.

use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass, TargetId};
use proptest::prelude::*;
use simkit::{run, OpId, Scheduler, Step, World};

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Sink);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Protected data survives: exclude any single target, rebuild, then
    /// exclude ANY second target — reads still verify.
    #[test]
    fn rebuild_then_second_failure_is_survivable(
        class_idx in 0usize..2,
        first in 0u16..48,
        second in 0u16..48,
        seed in any::<u64>(),
        objects in 1usize..4,
    ) {
        let class = [ObjectClass::RP_2, ObjectClass::EC_2P1][class_idx];
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(3, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 3, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);

        let mut rng = simkit::SplitMix64::new(seed);
        let mut stored = Vec::new();
        for _ in 0..objects {
            let (oid, s) = daos.array_create(0, cid, class, 1 << 16).unwrap();
            exec(&mut sched, s);
            let mut data = vec![0u8; 200_000];
            rng.fill_bytes(&mut data);
            exec(&mut sched, daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone())).unwrap());
            stored.push((oid, data));
        }

        let t1 = TargetId { server: first / 16, target: first % 16 };
        daos.exclude_target(t1);
        let (report, step) = daos.rebuild();
        prop_assert_eq!(report.shards_lost, 0, "single loss always recoverable");
        exec(&mut sched, step);

        let t2 = TargetId { server: second / 16, target: second % 16 };
        daos.exclude_target(t2);
        for (oid, data) in &stored {
            let (got, s) = daos.array_read(0, cid, *oid, 0, data.len() as u64).unwrap();
            exec(&mut sched, s);
            prop_assert_eq!(got.bytes().unwrap(), &data[..]);
        }
    }

    /// Rebuild is idempotent: a second pass finds nothing to do.
    #[test]
    fn rebuild_is_idempotent(first in 0u16..32, seed in any::<u64>()) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = daos.array_create(0, cid, ObjectClass::RP_2, 1 << 16).unwrap();
        exec(&mut sched, s);
        let mut rng = simkit::SplitMix64::new(seed);
        let mut data = vec![0u8; 100_000];
        rng.fill_bytes(&mut data);
        exec(&mut sched, daos.array_write(0, cid, oid, 0, Payload::Bytes(data)).unwrap());

        daos.exclude_target(TargetId { server: first / 16, target: first % 16 });
        let (_r1, step) = daos.rebuild();
        exec(&mut sched, step);
        let (r2, step2) = daos.rebuild();
        prop_assert_eq!(r2.shards_rebuilt, 0, "second pass idle");
        prop_assert_eq!(r2.shards_lost, 0);
        prop_assert!(step2.is_noop());
    }
}
